package matscale_test

import (
	"fmt"

	"matscale"
)

// The basic flow: build a machine, multiply, read the virtual-time
// measurements. On a fully connected CM-5 model the GK algorithm's
// time follows the paper's Eq. (18) exactly, so the output is
// deterministic.
func ExampleGK() {
	m := matscale.Hypercube(64, 17, 3) // ts=17, tw=3, 64 processors
	a := matscale.Identity(16)
	b := matscale.Identity(16)
	res, err := matscale.GK(m, a, b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Tp = %.0f flop units\n", res.Sim.Tp)
	fmt.Printf("product is identity: %v\n", res.C.At(7, 7) == 1 && res.C.At(7, 8) == 0)
	// Output:
	// Tp = 714 flop units
	// product is identity: true

}

// Cannon's algorithm measures exactly Eq. (3):
// n³/p + 2·ts·√p + 2·tw·n²/√p.
func ExampleCannon() {
	m := matscale.Hypercube(16, 17, 3)
	a := matscale.Identity(16)
	res, err := matscale.Cannon(m, a, a)
	if err != nil {
		panic(err)
	}
	// 16³/16 + 2·17·4 + 2·3·16²/4 = 256 + 136 + 384 = 776.
	fmt.Printf("Tp = %.0f\n", res.Sim.Tp)
	// Output:
	// Tp = 776
}

// RunAuto picks the algorithm Section 6's overhead comparison predicts
// to win — here Berntsen's algorithm, because p is far below n^(3/2).
func ExampleRunAuto() {
	m := matscale.NCube2(64)
	a := matscale.RandomMatrix(512, 512, 1)
	b := matscale.RandomMatrix(512, 512, 2)
	_, sel, err := matscale.RunAuto(m, a, b)
	if err != nil {
		panic(err)
	}
	fmt.Println("chose", sel.Name)
	// Output:
	// chose Berntsen
}

// Select consults the region analysis without running anything.
func ExampleSelect() {
	highLatency := matscale.Select(matscale.NCube2(4096), 64)
	lowLatency := matscale.Select(matscale.SIMD(1<<15), 64)
	fmt.Println("ts=150:", highLatency.Name)
	fmt.Println("ts=0.5:", lowLatency.Name)
	// Output:
	// ts=150: GK
	// ts=0.5: DNS
}

// WithBackend swaps the simulation engine under a run. The two
// backends are byte-equivalent — same Tp, same product, same metrics —
// so the events backend is purely a scale upgrade: it simulates
// Cannon's algorithm at a million ranks in seconds, where the
// goroutine backend cannot go.
func ExampleWithBackend() {
	m := matscale.Hypercube(16, 17, 3)
	a := matscale.Identity(16)
	g, err := matscale.Run(matscale.Cannon, m, a, a)
	if err != nil {
		panic(err)
	}
	e, err := matscale.Run(matscale.Cannon, m, a, a,
		matscale.WithBackend(matscale.Events))
	if err != nil {
		panic(err)
	}
	fmt.Printf("goroutines Tp = %.0f\n", g.Sim.Tp)
	fmt.Printf("events     Tp = %.0f\n", e.Sim.Tp)
	// Output:
	// goroutines Tp = 776
	// events     Tp = 776
}

// ParallelMul is the real (non-simulated) parallel multiply for the
// host machine.
func ExampleParallelMul() {
	a := matscale.RandomMatrix(64, 64, 1)
	b := matscale.RandomMatrix(64, 64, 2)
	c := matscale.ParallelMul(a, b, 4)
	serial := matscale.Mul(a, b)
	diff := 0.0
	for i := range c.Data {
		if d := c.Data[i] - serial.Data[i]; d > diff {
			diff = d
		}
	}
	fmt.Println("max diff:", diff)
	// Output:
	// max diff: 0
}
