package matscale

import (
	"fmt"
	"io"
	"reflect"
	"strconv"

	"matscale/internal/checkpoint"
	"matscale/internal/core"
	"matscale/internal/experiments"
	"matscale/internal/faults"
	"matscale/internal/machine"
	"matscale/internal/model"
	"matscale/internal/regions"
	"matscale/internal/server"
	"matscale/internal/shm"
	"matscale/internal/simulator"
	"matscale/internal/sweep"
)

// Observability types, re-exported.
type (
	// Metrics is the per-rank/per-link breakdown of a run with the
	// derived scalability quantities (measured To = p·Tp − W,
	// comm/compute ratio, load imbalance, critical rank). Populated on
	// Result by Run with WithMetrics.
	Metrics = core.Metrics
	// RankMetrics is one processor's virtual-time budget:
	// compute + send + idle == Tp per rank.
	RankMetrics = simulator.RankMetrics
	// LinkMetrics is the charged traffic of one directed link.
	LinkMetrics = simulator.LinkMetrics
	// Trace is the ordered per-processor event history of a run; it
	// exports to Chrome trace_event JSON (WriteChromeTrace), CSV
	// (WriteCSV) and an ASCII timeline (Timeline).
	Trace = simulator.Trace
	// Faults is a seeded, deterministic perturbation of the virtual
	// machine: per-rank compute slowdowns (stragglers), per-link
	// latency/bandwidth perturbation, and probabilistic message loss
	// repaired by timeout + bounded retry. Attach one to a run with
	// WithFaults; see docs/FAULTS.md for the model and grammar.
	Faults = faults.Config
	// Degradation attributes fault-induced overhead to its sources
	// (straggler-inflated compute vs retry-inflated communication);
	// populated on Metrics when a run executes under enabled faults.
	Degradation = simulator.Degradation
)

// ParseFaults builds a fault scenario from the textual grammar the CLI
// accepts, e.g. "straggler=3@rank7,loss=0.01,seed=42". See
// docs/FAULTS.md for the full grammar.
var ParseFaults = faults.Parse

// Backend selects the simulation engine that executes the rank
// programs of a Run, RunAuto or Sweep call. Both backends produce
// byte-identical results — Tp, metrics, traces, CSV — for a fixed
// configuration, because the cost model is schedule-independent; the
// choice only affects host performance and scale. See docs/BACKENDS.md
// for the model and the determinism argument.
type Backend = machine.Backend

const (
	// Goroutines is the default engine: one host goroutine per
	// simulated rank with blocking mailboxes. Fine up to a few thousand
	// ranks.
	Goroutines = machine.BackendGoroutines
	// Events is the discrete-event engine of internal/des: a central
	// virtual-time event loop resuming rank coroutines one at a time,
	// with a native fast path for systolic programs. It reaches
	// p = 2^20 ranks in seconds.
	Events = machine.BackendEvents
)

// ParseBackend parses the textual backend names the CLI accepts:
// "goroutines" and "events".
var ParseBackend = machine.ParseBackend

// UnsupportedBackendError is the typed error Run, RunAuto and Sweep
// return when the requested backend cannot serve the call — today,
// when the Backend value itself is not one of the defined constants;
// a future backend supporting only a subset of the options would
// report the offending combination the same way.
type UnsupportedBackendError struct {
	Backend Backend
	Reason  string
}

func (e *UnsupportedBackendError) Error() string {
	return fmt.Sprintf("matscale: backend %v unsupported: %s", e.Backend, e.Reason)
}

// Checkpoint is an encoded snapshot of a suspended Run: the state of
// the Events engine at a consistent cut, wrapped in a versioned,
// integrity-hashed container. Write one with WithCheckpoint +
// WithSuspendAfter, reload it with Restore, and feed it back with
// WithResume; the resumed run's Result, Metrics, CSV and trace bytes
// are identical to an uninterrupted run's. See docs/BACKENDS.md for
// the consistent-cut and verified-restore argument.
type Checkpoint struct {
	// Events is the number of event-loop dispatches before the cut.
	Events uint64
	// Data is the encoded snapshot container.
	Data []byte
}

// WriteTo writes the encoded snapshot to w, making *Checkpoint an
// io.WriterTo.
func (c *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(c.Data)
	return int64(n), err
}

// Restore reads a checkpoint previously written through a
// WithCheckpoint sink, verifying the container's magic, length and
// integrity hash — a truncated or corrupted snapshot is a typed error
// here, not undefined behavior later. Configuration-level validation
// (same machine, same program, same build) happens when the checkpoint
// is handed to Run via WithResume, where a mismatch surfaces as a
// *ResumeMismatchError.
func Restore(r io.Reader) (*Checkpoint, error) {
	snap, err := checkpoint.Read(r)
	if err != nil {
		return nil, err
	}
	events, _ := strconv.ParseUint(snap.Meta["events"], 10, 64)
	return &Checkpoint{Events: events, Data: snap.Encode()}, nil
}

// Typed checkpoint/resume errors, re-exported for errors.As.
type (
	// SuspendedError is how Run reports a suspension requested with
	// WithSuspendAfter: not a failure — the snapshot it carries (already
	// delivered to the WithCheckpoint sink) resumes the run, on this
	// process or another, with byte-identical output.
	SuspendedError = simulator.SuspendedError
	// ResumeMismatchError reports a WithResume checkpoint that cannot
	// resume under the given configuration: a different machine,
	// program, or build, caught either by the snapshot fingerprint or
	// by the byte-for-byte verification of the restored state.
	ResumeMismatchError = simulator.ResumeMismatchError
	// UnsupportedCapabilityError reports an option demanded of a
	// backend that does not implement it — asking the Goroutines engine
	// for a checkpoint, or a Sweep call for run-level suspension. The
	// API returns it instead of silently ignoring the option.
	UnsupportedCapabilityError = simulator.UnsupportedCapabilityError
)

// Sweep types, re-exported. See docs/SWEEP.md for the spec grammar and
// the determinism guarantee.
type (
	// SweepSpec declares an experiment grid: the cross product of
	// algorithms × machines × processor counts × matrix sizes ×
	// optional fault scenarios. Zero-value fields have sensible
	// defaults only where documented on the type; Validate reports
	// what a spec is missing.
	SweepSpec = sweep.Spec
	// SweepCell is one measured grid cell: its coordinates plus the
	// simulated and model-predicted quantities (or the structural
	// rejection that kept it from running).
	SweepCell = sweep.CellResult
	// SweepResult is a completed sweep: the spec that produced it, the
	// per-cell measurements in deterministic sorted order, and the run
	// tallies. It exports to CSV, JSON and an aligned text table.
	SweepResult = sweep.Result
)

// SweepAlgorithms lists the algorithm names a SweepSpec accepts,
// sorted.
var SweepAlgorithms = sweep.AlgorithmNames

// SweepCellCache memoizes completed sweep cells across runs. Sweep
// results served from a cache are byte-identical to freshly simulated
// ones — the differential suite asserts it — because a cell is a pure
// function of its canonical (spec-cell, seed, backend) key. The sweep
// server keys its LRU with it; embed one in long-lived tooling the
// same way.
type SweepCellCache = sweep.CellCache

// Sweep server types, re-exported. SweepServer is an embeddable
// HTTP/JSON sweep service: bounded job queue, token-bucket admission,
// SSE progress streaming, and an LRU cell cache shared by overlapping
// sweeps. See docs/SERVER.md for the API, the cache-key derivation and
// the backpressure contract; cmd/matscale-server is the thin binary
// front.
type (
	SweepServer       = server.Server
	SweepServerConfig = server.Config
	SweepServerStats  = server.Stats
	// SweepServerClock injects time into a SweepServer. The server core
	// is wall-clock-free by construction (it sits under the repo's
	// determinism analyzers); binaries supply a wall clock, tests a
	// fake one.
	SweepServerClock = server.Clock
)

// NewSweepServer validates the config and starts the job workers. The
// caller owns shutdown: call SweepServer.Shutdown to drain.
var NewSweepServer = server.New

// Job-control types, re-exported. A SweepServer job is a uniform
// resource: Submit admits it, Suspend parks it at the next cell
// boundary with a resumable checkpoint, Resume re-enqueues it, Cancel
// terminates it. See docs/SERVER.md for the state machine.
type (
	// SweepJob is one admitted sweep of a SweepServer.
	SweepJob = server.Job
	// SweepJobState is a job's position in the lifecycle machine
	// queued → running → {suspended, done, failed, cancelled}.
	SweepJobState = server.State
)

// The SweepJobState values.
const (
	JobQueued    = server.StateQueued
	JobRunning   = server.StateRunning
	JobDone      = server.StateDone
	JobFailed    = server.StateFailed
	JobSuspended = server.StateSuspended
	JobCancelled = server.StateCancelled
)

// ServerErrorKind classifies every typed error a SweepServer method
// can return — one enum in place of per-type matching. Each kind value
// is itself an error, so it works directly as an errors.Is target:
//
//	if _, err := srv.Submit(spec, backend); errors.Is(err, matscale.ServerKindQueueFull) {
//	        // back off and retry
//	}
//
// ServerErrorKindOf recovers the kind of any server error (including
// ones wrapped with fmt.Errorf %w), and the HTTP layer maps each kind
// to its status code with HTTPStatus.
type ServerErrorKind = server.ErrorKind

// The ServerErrorKind values.
const (
	ServerKindSweepError        = server.KindSweepError
	ServerKindInternal          = server.KindInternal
	ServerKindBadRequest        = server.KindBadRequest
	ServerKindBadSpec           = server.KindBadSpec
	ServerKindQueueFull         = server.KindQueueFull
	ServerKindRateLimited       = server.KindRateLimited
	ServerKindShuttingDown      = server.KindShuttingDown
	ServerKindJobTimeout        = server.KindJobTimeout
	ServerKindUnknownJob        = server.KindUnknownJob
	ServerKindInvalidTransition = server.KindInvalidTransition
	ServerKindSuspended         = server.KindSuspended
	ServerKindNotDone           = server.KindNotDone
	ServerKindCanceled          = server.KindCanceled
)

// ServerErrorKindOf returns the ServerErrorKind of any error returned
// by a SweepServer method, defaulting to ServerKindSweepError for
// untyped sweep failures.
var ServerErrorKindOf = server.KindOf

// Typed sweep-server errors, re-exported so embedders can errors.As
// when a field payload matters (RateLimited's RetryAfter, QueueFull's
// capacity).
//
// Deprecated: match by class instead — errors.Is(err,
// ServerKindQueueFull) and the other ServerErrorKind values cover
// every server error, including the job-control ones these aliases
// predate.
type (
	SweepQueueFullError    = server.QueueFullError
	SweepRateLimitedError  = server.RateLimitedError
	SweepShuttingDownError = server.ShuttingDownError
	SweepJobTimeoutError   = server.JobTimeoutError
	SweepBadSpecError      = server.BadSpecError
)

// Option configures a Run, RunAuto or HostMul call.
type Option func(*runConfig)

type runConfig struct {
	metrics      bool
	traceSink    io.Writer
	dnsGrid      int
	workers      int
	faults       *faults.Config
	progress     func(done, total int, c SweepCell)
	backend      Backend
	backendSet   bool
	suspendAfter uint64
	ckptSink     io.Writer
	resume       *Checkpoint
}

// checkpointing reports whether any checkpoint/resume option was set.
func (c runConfig) checkpointing() bool {
	return c.suspendAfter > 0 || c.ckptSink != nil || c.resume != nil
}

func newRunConfig(opts []Option) runConfig {
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithMetrics asks Run to populate Result.Metrics with the per-rank
// and per-link breakdown of the simulation and its derived quantities.
// Collection charges zero virtual time: Tp and the product are
// byte-identical with and without it.
func WithMetrics() Option {
	return func(c *runConfig) { c.metrics = true }
}

// WithTrace asks Run to record the per-processor event history and
// write it to sink as Chrome trace_event JSON, loadable in
// chrome://tracing or Perfetto (https://ui.perfetto.dev). The trace is
// also left on Result.Sim.Trace for programmatic use. Zero virtual
// cost.
func WithTrace(sink io.Writer) Option {
	return func(c *runConfig) { c.traceSink = sink }
}

// WithDNSGrid runs the DNS algorithm on a gridSide × gridSide block
// grid coarser than one element per processor, letting the DNS
// communication structure run with p < n² processors. It may only be
// combined with a nil or DNS algorithm argument to Run. It replaces
// the deprecated DNSWithGrid function.
func WithDNSGrid(gridSide int) Option {
	return func(c *runConfig) { c.dnsGrid = gridSide }
}

// WithWorkers sets the number of host goroutine workers used by the
// entry points that parallelize on the host: Sweep and RunAll fan
// their independent simulations over n workers, and HostMul (and
// ParallelMul) splits the multiplication itself. 0 or less means all
// CPUs. It does not affect the simulated algorithms, whose processor
// count is the machine's, and it never changes any measured or
// emitted byte — only the wall-clock time.
//
// Host-kernel semantics: for HostMul the worker count selects how many
// goroutines the host matmul kernel runs, over a static ownership
// partition of the output (ncBlock-aligned column panels when the
// output is wide enough, whole-row bands otherwise) computed from the
// input shapes alone. Every output element is written by exactly one
// worker running the serial kernel's own accumulation loop, so the
// product is bit-identical — including Inf/NaN propagation — at every
// worker count; see docs/PERFORMANCE.md. Worker counts the shape
// cannot feed are clamped rather than erroring.
func WithWorkers(n int) Option {
	return func(c *runConfig) { c.workers = n }
}

// WithProgress asks Sweep to call fn after each grid cell finishes,
// with the running completion count, the total cell count and the
// cell's result. Calls arrive in completion order — which depends on
// the worker schedule, unlike the returned SweepResult, whose cell
// order does not. fn must be safe for concurrent use only in the sense
// that Sweep serializes the calls itself; fn may write to a terminal
// directly.
func WithProgress(fn func(done, total int, c SweepCell)) Option {
	return func(c *runConfig) { c.progress = fn }
}

// WithBackend selects the simulation engine a Run, RunAuto or Sweep
// call executes on: Goroutines (the default) or Events. The result is
// byte-identical either way — backend-equivalence is asserted by the
// cross-backend differential suite — so pick Events when the rank
// count is large (it simulates Cannon at p = 2^20 in seconds) and
// Goroutines otherwise:
//
//	res, err := matscale.Run(matscale.Cannon, matscale.NCube2(1<<20), a, b,
//	        matscale.WithBackend(matscale.Events))
//
// An undefined Backend value makes the call fail with an
// *UnsupportedBackendError. The caller's machine is never mutated.
func WithBackend(b Backend) Option {
	return func(c *runConfig) { c.backend, c.backendSet = b, true }
}

// WithFaults runs the algorithm on a deterministically perturbed
// machine: f's stragglers slow per-rank compute, its link factors and
// jitter scale transfer costs, and its loss rate forces timeout +
// bounded-retry retransmissions, all charged at the ts/tw cost model so
// the damage appears in the measured To = p·Tp − W. A fixed (machine,
// faults, program) triple reproduces byte-identical results. Combine
// with WithMetrics to get the Degradation breakdown of the damage:
//
//	f, _ := matscale.ParseFaults("straggler=2@rank0,seed=42")
//	res, err := matscale.Run(matscale.GK, matscale.NCube2(64), a, b,
//	        matscale.WithFaults(f), matscale.WithMetrics())
//	// res.Metrics.Degradation attributes the extra overhead.
//
// A nil f is a no-op. The caller's machine is never mutated.
func WithFaults(f *Faults) Option {
	return func(c *runConfig) { c.faults = f }
}

// WithCheckpoint asks Run to deliver the encoded snapshot of a
// suspended run to sink before returning. Pair it with
// WithSuspendAfter, which picks the cut; the run then returns a
// *SuspendedError (not a failure) and the snapshot reloads with
// Restore + WithResume:
//
//	var buf bytes.Buffer
//	_, err := matscale.Run(matscale.Cannon, m, a, b,
//	        matscale.WithBackend(matscale.Events),
//	        matscale.WithCheckpoint(&buf), matscale.WithSuspendAfter(500))
//	// errors.As(err, &suspended) — buf holds the snapshot.
//	ck, _ := matscale.Restore(&buf)
//	res, err := matscale.Run(matscale.Cannon, m, a, b,
//	        matscale.WithBackend(matscale.Events), matscale.WithResume(ck))
//	// res is byte-identical to an uninterrupted run.
//
// Checkpointing requires the Events backend (the Goroutines engine has
// no deterministic consistent cut) and an explicit algorithm; an
// unsupported combination fails with a typed error instead of being
// ignored.
func WithCheckpoint(sink io.Writer) Option {
	return func(c *runConfig) { c.ckptSink = sink }
}

// WithSuspendAfter stops the run at the consistent cut reached after
// exactly events event-loop dispatches, delivering the snapshot to the
// WithCheckpoint sink (which it requires). A run that completes in
// fewer dispatches finishes normally.
func WithSuspendAfter(events uint64) Option {
	return func(c *runConfig) { c.suspendAfter = events }
}

// WithResume continues a run from a checkpoint loaded with Restore.
// The machine, matrices, algorithm and backend must match the
// suspended run's exactly — the engine verifies the restored state
// byte-for-byte and rejects divergence with a *ResumeMismatchError.
// Combine with WithCheckpoint + WithSuspendAfter to suspend again
// further on.
func WithResume(ck *Checkpoint) Option {
	return func(c *runConfig) { c.resume = ck }
}

// validateBackend rejects WithBackend values outside the defined
// constants with the typed error.
func (c runConfig) validateBackend() error {
	if c.backendSet && !c.backend.Known() {
		return &UnsupportedBackendError{Backend: c.backend, Reason: "not a defined Backend value"}
	}
	return nil
}

// validateCheckpoint rejects meaningless checkpoint option
// combinations up front. Backend capability itself is checked by the
// engine dispatch (a non-capable backend returns the same typed
// *UnsupportedCapabilityError), so the effective backend — whether
// from WithBackend or the machine — is validated in one place.
func (c runConfig) validateCheckpoint() error {
	if c.suspendAfter > 0 && c.ckptSink == nil {
		return fmt.Errorf("matscale: WithSuspendAfter requires WithCheckpoint (the snapshot needs a destination)")
	}
	if c.ckptSink != nil && c.suspendAfter == 0 && c.resume == nil {
		return fmt.Errorf("matscale: WithCheckpoint does nothing without WithSuspendAfter (no cut is ever taken)")
	}
	return nil
}

// machineFor returns the machine the algorithm should run on: m
// itself when no observability, faults or backend were requested,
// otherwise a copy with the collection flags raised, the fault
// scenario attached and the backend selected, so the caller's machine
// is never mutated.
func (c runConfig) machineFor(m *Machine) *Machine {
	if !c.metrics && c.traceSink == nil && c.faults == nil && !c.backendSet && !c.checkpointing() {
		return m
	}
	mm := *m
	mm.CollectMetrics = mm.CollectMetrics || c.metrics
	mm.CollectTrace = mm.CollectTrace || c.traceSink != nil
	if c.faults != nil {
		mm.Faults = c.faults
	}
	if c.backendSet {
		mm.Backend = c.backend
	}
	if c.checkpointing() {
		ctl := &machine.CheckpointControl{StopAfter: c.suspendAfter}
		if c.resume != nil {
			ctl.Resume = c.resume.Data
		}
		if sink := c.ckptSink; sink != nil {
			ctl.Sink = func(snapshot []byte, events uint64) error {
				_, err := sink.Write(snapshot)
				return err
			}
		}
		mm.Checkpoint = ctl
	}
	return &mm
}

// export writes the Chrome trace if a sink was requested.
func (c runConfig) export(res *Result) error {
	if c.traceSink == nil {
		return nil
	}
	if res.Sim == nil || res.Sim.Trace == nil {
		return fmt.Errorf("matscale: algorithm produced no trace")
	}
	return res.Sim.Trace.WriteChromeTrace(c.traceSink)
}

// Run executes one parallel formulation on a simulated machine and
// returns the enriched Result. It is the primary entry point of the
// library:
//
//	res, err := matscale.Run(matscale.GK, matscale.NCube2(64), a, b,
//	        matscale.WithMetrics(),
//	        matscale.WithTrace(traceFile))
//	// res.C is the verified product, res.Sim.Tp the virtual time,
//	// res.Metrics the per-rank/per-link breakdown.
//
// A nil alg auto-selects the predicted-fastest applicable algorithm
// (see RunAuto, which additionally reports the Selection). The
// algorithm package variables (GK, Cannon, ...) remain callable
// directly; Run adds the observability options on top without changing
// any measured quantity.
func Run(alg Algorithm, m *Machine, a, b *Matrix, opts ...Option) (*Result, error) {
	cfg := newRunConfig(opts)
	if err := cfg.validateBackend(); err != nil {
		return nil, err
	}
	if err := cfg.validateCheckpoint(); err != nil {
		return nil, err
	}
	if cfg.dnsGrid > 0 {
		if alg != nil && !sameAlgorithm(alg, DNS) {
			return nil, fmt.Errorf("matscale: WithDNSGrid requires the DNS algorithm (or nil)")
		}
		g := cfg.dnsGrid
		alg = func(m *Machine, a, b *Matrix) (*Result, error) {
			return core.DNSWithGrid(m, a, b, g)
		}
	}
	if alg == nil {
		res, _, err := runAuto(cfg, m, a, b)
		return res, err
	}
	res, err := alg(cfg.machineFor(m), a, b)
	if err != nil {
		return nil, err
	}
	return res, cfg.export(res)
}

// sameAlgorithm reports whether two Algorithm values refer to the same
// function (used to validate option/algorithm combinations; Go func
// values are otherwise not comparable).
func sameAlgorithm(a, b Algorithm) bool {
	return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}

// Selection names an algorithm choice of the paper's Section 6
// analysis: the formulation, its name, and the parallel time the
// closed-form model predicts for it on the queried (machine, n).
type Selection struct {
	Name        string
	Algorithm   Algorithm
	PredictedTp float64
}

// Select returns the algorithm the paper's Section 6 analysis predicts
// to be fastest for multiplying n×n matrices on m, with its model-
// predicted parallel time. It compares the Table 1 overhead functions
// of the applicable algorithms without running anything.
func Select(m *Machine, n int) Selection {
	letter := regions.Best(Params{Ts: m.Ts, Tw: m.Tw}, float64(n), float64(m.P()))
	var name string
	var alg Algorithm
	switch letter {
	case 'b':
		name, alg = "Berntsen", core.Berntsen
	case 'c':
		name, alg = "Cannon", core.Cannon
	case 'd':
		name, alg = "DNS", core.DNS
	default: // 'a', serial (p=1, any algorithm degenerates), infeasible
		name, alg = "GK", core.GK
	}
	return Selection{Name: name, Algorithm: alg, PredictedTp: predictedTp(name, m, n)}
}

// predictedTp evaluates the paper's closed-form parallel time of the
// named algorithm (Eqs. 2–7) for n×n matrices on m; 0 when the model
// has no equation for the name.
func predictedTp(name string, m *Machine, n int) float64 {
	pr := Params{Ts: m.Ts, Tw: m.Tw}
	nf, pf := float64(n), float64(m.P())
	switch name {
	case "Simple":
		return model.PaperSimpleTp(pr, nf, pf)
	case "Cannon":
		return model.PaperCannonTp(pr, nf, pf)
	case "Fox":
		return model.PaperFoxTp(pr, nf, pf)
	case "Berntsen":
		return model.PaperBerntsenTp(pr, nf, pf)
	case "DNS":
		return model.PaperDNSTp(pr, nf, pf)
	case "GK":
		return model.PaperGKTp(pr, nf, pf)
	}
	return 0
}

// RunAuto picks the predicted-fastest applicable algorithm for (m, n)
// and runs it with the given options, falling back along the overhead
// ordering when the preferred formulation's structural requirements
// (perfect square/cube processor counts, divisibility) do not hold for
// this exact configuration. The returned Selection identifies what
// actually ran.
func RunAuto(m *Machine, a, b *Matrix, opts ...Option) (*Result, Selection, error) {
	return runAuto(newRunConfig(opts), m, a, b)
}

func runAuto(cfg runConfig, m *Machine, a, b *Matrix) (*Result, Selection, error) {
	if err := cfg.validateBackend(); err != nil {
		return nil, Selection{}, err
	}
	if cfg.checkpointing() {
		// Auto-selection falls back across algorithms on error, which
		// would misread a SuspendedError as a failure and could resume a
		// snapshot under a different program than suspended it.
		return nil, Selection{}, fmt.Errorf("matscale: checkpoint options require an explicit algorithm; auto-selection cannot guarantee the resumed program matches")
	}
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, Selection{}, fmt.Errorf("matscale: auto-selection needs equal square matrices, got %dx%d and %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	first := Select(m, a.Rows)
	candidates := []Selection{first}
	for _, c := range []struct {
		name string
		alg  Algorithm
	}{
		{"GK", core.GK}, {"Berntsen", core.Berntsen}, {"Cannon", core.Cannon},
		{"Simple", core.Simple}, {"DNS", core.DNS}, {"Fox", core.Fox},
	} {
		if c.name != first.Name {
			candidates = append(candidates, Selection{Name: c.name, Algorithm: c.alg, PredictedTp: predictedTp(c.name, m, a.Rows)})
		}
	}
	mm := cfg.machineFor(m)
	var lastErr error
	for _, c := range candidates {
		res, err := c.Algorithm(mm, a, b)
		if err == nil {
			return res, c, cfg.export(res)
		}
		lastErr = err
	}
	return nil, Selection{}, fmt.Errorf("matscale: no algorithm accepts n=%d on %s: %w", a.Rows, m, lastErr)
}

// Sweep runs a whole experiment grid — every cell of spec's
// algorithms × machines × Ps × Ns × fault-scenarios cross product —
// fanning the independent simulations over a host worker pool and
// returning the merged result:
//
//	spec := &matscale.SweepSpec{
//	        Algorithms: []string{"cannon", "gk"},
//	        Machines:   []string{"ncube2"},
//	        Ps:         []int{16, 64, 256},
//	        Ns:         []int{64, 128},
//	}
//	res, err := matscale.Sweep(spec, matscale.WithWorkers(4))
//	// res.Cells holds one SweepCell per grid point, sorted;
//	// res.CSV() / res.WriteJSON(w) / res.Render() export it.
//
// WithWorkers selects the pool size (default all CPUs), WithProgress
// observes cells as they complete, and WithBackend selects the
// simulation engine every cell executes on. The checkpoint options are
// rejected with a typed *UnsupportedCapabilityError — a sweep's
// suspension granularity is the cell, exposed through the SweepServer
// job-control API, not the run-level cut. The remaining options are
// ignored — per-cell fault scenarios come from spec.Faults, so that
// clean-vs-faulted grids are part of the declarative spec. For a fixed
// spec the result — including its CSV, JSON and rendered forms — is
// byte-identical at every worker count and under either backend; see
// docs/SWEEP.md and docs/BACKENDS.md.
func Sweep(spec *SweepSpec, opts ...Option) (*SweepResult, error) {
	cfg := newRunConfig(opts)
	if err := cfg.validateBackend(); err != nil {
		return nil, err
	}
	if cfg.checkpointing() {
		return nil, &UnsupportedCapabilityError{
			Backend:    cfg.backend,
			Capability: "run-level checkpoint/resume",
			Reason:     "sweeps checkpoint at cell granularity; use the SweepServer job-control API (suspend/resume)",
		}
	}
	return sweep.Run(spec, sweep.Options{Workers: cfg.workers, Progress: cfg.progress, Backend: cfg.backend})
}

// RunAll regenerates the full paper reproduction — every table, figure
// and analysis — writing the rendered reports to w in the paper's
// order. quick skips the two CM-5 efficiency sweeps (Figures 4 and 5),
// which dominate the running time. The report sections and their inner
// experiment grids run concurrently on the WithWorkers pool (default
// all CPUs); the bytes written to w are identical for every worker
// count. The other options are ignored.
func RunAll(w io.Writer, quick bool, opts ...Option) error {
	cfg := newRunConfig(opts)
	return experiments.RunAllParallel(w, quick, cfg.workers)
}

// HostMul multiplies on the host machine with real goroutine workers —
// the library's non-simulated fast path, in the error style of the rest
// of the public API. WithWorkers selects the worker count (default all
// CPUs); the other options are ignored. It returns an error on an
// inner-dimension mismatch (a and b may be rectangular).
//
// The result is bit-identical to Mul at any worker count: the kernel
// partitions the output into statically owned slabs and runs the
// serial accumulation loop inside each, so parallelism only changes
// wall-clock time, never a single output bit.
func HostMul(a, b *Matrix, opts ...Option) (*Matrix, error) {
	cfg := newRunConfig(opts)
	return shm.Mul(a, b, cfg.workers, 0)
}
