// Quickstart: multiply two matrices three ways — serially, with real
// goroutine parallelism on the host, and with the paper's GK algorithm
// on a simulated 64-processor CM-5 — and compare the results.
package main

import (
	"fmt"
	"log"
	"math"

	"matscale"
)

func main() {
	const n = 96
	a := matscale.RandomMatrix(n, n, 1)
	b := matscale.RandomMatrix(n, n, 2)

	// 1. The serial baseline: W = n³ unit operations.
	serial := matscale.Mul(a, b)

	// 2. Real shared-memory parallelism on this machine.
	parallel := matscale.ParallelMul(a, b, 0)
	fmt.Printf("host parallel multiply: max diff vs serial = %g\n", maxDiff(parallel, serial))

	// 3. The GK algorithm (Gupta & Kumar's contribution) on a simulated
	// 64-processor CM-5. The product is computed for real; the virtual
	// clock measures the paper's cost model.
	m := matscale.CM5(64)
	res, err := matscale.GK(m, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GK on %s:\n", m)
	fmt.Printf("  max diff vs serial = %g\n", maxDiff(res.C, serial))
	fmt.Printf("  parallel time Tp   = %.1f flop units\n", res.Sim.Tp)
	fmt.Printf("  speedup            = %.2f on %d processors\n", res.Speedup(), res.P)
	fmt.Printf("  efficiency         = %.3f\n", res.Efficiency())

	// Compare with Cannon's algorithm at the same size: n = 96 is the
	// crossover the paper measured on the real CM-5 (Figure 4).
	cres, err := matscale.Cannon(m, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cannon efficiency    = %.3f (paper: crossover with GK near n = 96)\n", cres.Efficiency())
}

func maxDiff(x, y *matscale.Matrix) float64 {
	var max float64
	for i := range x.Data {
		if d := math.Abs(x.Data[i] - y.Data[i]); d > max {
			max = d
		}
	}
	return max
}
