// modelcheck stress-tests the paper's performance model itself:
//
//  1. every algorithm is re-run with link-level contention tracking
//     enabled, verifying that its messages never collide — the paper's
//     contention-free assumption is structural, not an idealization;
//  2. the GK algorithm's virtual-time schedule is rendered, making the
//     Section 4.6 stage structure visible;
//  3. the overhead of each run is decomposed into communication and
//     idle time (Section 2's To components).
package main

import (
	"fmt"
	"log"

	"matscale/internal/core"
	"matscale/internal/machine"
	"matscale/internal/matrix"
)

func main() {
	a := matrix.RandomInts(16, 16, 1)
	b := matrix.RandomInts(16, 16, 2)

	fmt.Println("1. Contention check: rerun every algorithm with link tracking")
	fmt.Printf("%-10s %6s %14s %14s %16s\n", "algorithm", "p", "Tp plain", "Tp tracked", "contention wait")
	cases := []struct {
		name string
		alg  core.Algorithm
		p    int
	}{
		{"Simple", core.Simple, 16},
		{"Cannon", core.Cannon, 16},
		{"Fox", core.Fox, 16},
		{"Berntsen", core.Berntsen, 64},
		{"GK", core.GK, 64},
	}
	for _, c := range cases {
		plain, err := c.alg(machine.Hypercube(c.p, 17, 3), a, b)
		if err != nil {
			log.Fatal(err)
		}
		m := machine.Hypercube(c.p, 17, 3)
		m.TrackContention = true
		tracked, err := c.alg(m, a, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %6d %14.1f %14.1f %16.1f\n",
			c.name, c.p, plain.Sim.Tp, tracked.Sim.Tp, tracked.Sim.ContentionWait)
	}
	fmt.Println("-> identical times, zero waiting: the ts + tw·m model holds exactly.")
	fmt.Println()

	fmt.Println("2. The GK algorithm's schedule (C = compute, S = send, . = wait):")
	res, tr, err := core.GKTraced(machine.Hypercube(8, 17, 3), matrix.RandomInts(8, 8, 3), matrix.RandomInts(8, 8, 4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tr.Timeline(64))
	fmt.Println()

	fmt.Println("3. Overhead decomposition (Section 2): To = communication + idle")
	to := res.Overhead()
	fmt.Printf("   To = %.1f  =  comm %.1f  +  idle %.1f\n",
		to, res.Sim.TotalComm, res.Sim.IdleTime())
}
