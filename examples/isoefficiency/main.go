// isoefficiency walks through the paper's scalability methodology
// (Sections 3, 5 and 8): it solves the isoefficiency relation
// W = K·To(W, p) for each algorithm, shows Berntsen's concurrency-
// limited O(p²) scalability and the DNS efficiency ceiling, and runs
// the Section 8 technology tradeoff.
package main

import (
	"fmt"
	"log"
	"math"

	"matscale/internal/experiments"
	"matscale/internal/iso"
	"matscale/internal/model"
)

func main() {
	pr := model.Params{Ts: 150, Tw: 3}

	fmt.Println("How fast must the problem grow to hold 50% efficiency?")
	fmt.Printf("%10s %16s %16s %16s\n", "p", "Cannon W", "GK W", "Berntsen W*")
	bernCap := func(n float64) float64 { return math.Pow(n, 1.5) }
	for exp := 8; exp <= 24; exp += 4 {
		p := math.Pow(2, float64(exp))
		cannon, _ := iso.SolveW(func(n, q float64) float64 { return model.CannonTo(pr, n, q) }, p, 0.5)
		gk, _ := iso.SolveW(func(n, q float64) float64 { return model.GKTo(pr, n, q) }, p, 0.5)
		bern, _ := iso.OverallW(func(n, q float64) float64 { return model.BerntsenTo(pr, n, q) }, bernCap, p, 0.5)
		fmt.Printf("%10.0f %16.3g %16.3g %16.3g\n", p, cannon, gk, bern)
	}
	fmt.Println("(*including the p ≤ n^(3/2) concurrency limit that makes Berntsen O(p²))")
	fmt.Println()

	ceiling := iso.MaxEfficiencyDNS(pr.Ts, pr.Tw)
	fmt.Printf("DNS efficiency ceiling on this machine: 1/(1+2(ts+tw)) = %.4f\n", ceiling)
	fmt.Println("   (no problem size can push DNS above it — Section 5.3)")
	fmt.Println()

	fmt.Println(experiments.Table1(pr))

	s, err := experiments.TechnologyReport(model.Params{Ts: 0.5, Tw: 3}, 1<<14, 0.05, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(s)
	fmt.Println("\nContrary to conventional wisdom, more-but-slower processors can need")
	fmt.Println("less problem growth than fewer-but-faster ones (Section 8).")
}
