// cm5 replays the paper's Section 9 experiment: Cannon's algorithm and
// the GK algorithm race on a simulated CM-5 across matrix sizes, first
// on 64 processors (Figure 4), then on 484/512 processors (Figure 5),
// and the crossover points are compared with the paper's predictions.
package main

import (
	"fmt"
	"log"

	"matscale/internal/experiments"
)

func main() {
	for _, fig := range []int{4, 5} {
		f, err := experiments.EfficiencyFigure(fig)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(f.Render())
		fmt.Println()
		fmt.Print(f.Plot())
		switch fig {
		case 4:
			fmt.Println("paper: predicted crossover n = 83, measured n = 96")
		case 5:
			fmt.Println("paper: predicted crossover n = 295 at high efficiency")
		}
		fmt.Println()
	}
}
