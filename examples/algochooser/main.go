// algochooser demonstrates the paper's concluding idea: "all the
// algorithms can be stored in a library and the best algorithm can be
// pulled out by a smart preprocessor/compiler depending on the various
// parameters." RunAuto picks the formulation the Section 6 overhead
// analysis predicts to win for each machine and problem size, runs it,
// and the example cross-checks the choice by racing every applicable
// algorithm.
package main

import (
	"fmt"
	"log"

	"matscale"
)

func main() {
	cases := []struct {
		name string
		m    *matscale.Machine
		n    int
	}{
		{"nCUBE-2-like, 64 procs, large matrices", matscale.NCube2(64), 512},
		{"nCUBE-2-like, 4096 procs, small matrices", matscale.NCube2(4096), 64},
		{"SIMD (ts=0.5), 4096 procs, medium matrices", matscale.SIMD(4096), 128},
		{"CM-5, 64 procs, small matrices", matscale.CM5(64), 48},
	}

	for _, c := range cases {
		fmt.Printf("== %s (n=%d, p=%d)\n", c.name, c.n, c.m.P())
		a := matscale.RandomMatrix(c.n, c.n, 11)
		b := matscale.RandomMatrix(c.n, c.n, 12)

		res, sel, err := matscale.RunAuto(c.m, a, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   RunAuto chose %-9s Tp=%.0f  E=%.3f\n", sel.Name, res.Sim.Tp, res.Efficiency())

		// Race the rest of the library for comparison.
		algs := []struct {
			name string
			alg  matscale.Algorithm
		}{
			{"GK", matscale.GK},
			{"Cannon", matscale.Cannon},
			{"Berntsen", matscale.Berntsen},
			{"Simple", matscale.Simple},
			{"Fox", matscale.Fox},
			{"DNS", matscale.DNS},
		}
		for _, x := range algs {
			r, err := x.alg(c.m, a, b)
			if err != nil {
				fmt.Printf("   %-9s not applicable (%v)\n", x.name, shortErr(err))
				continue
			}
			marker := ""
			if r.Sim.Tp < res.Sim.Tp {
				marker = "  <- faster, but memory-inefficient (excluded from §6's choice)"
			}
			fmt.Printf("   %-9s Tp=%.0f  E=%.3f%s\n", x.name, r.Sim.Tp, r.Efficiency(), marker)
		}
		fmt.Println()
	}
	fmt.Println("Note: the chooser compares the four algorithms of the paper's Section 6.")
	fmt.Println("The simple algorithm can be marginally faster at moderate scale but needs")
	fmt.Println("O(n²·√p) total memory instead of O(n²) (Section 4.1), so the paper — and")
	fmt.Println("the chooser — leave it out.")
}

func shortErr(err error) string {
	s := err.Error()
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}
