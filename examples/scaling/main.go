// scaling demonstrates Section 3's motivation in simulation: for a
// fixed problem size the speedup of a parallel matrix multiplication
// saturates (and efficiency collapses) as processors are added, while
// growing the problem along the isoefficiency function holds the
// efficiency constant — the scaled-speedup regime.
package main

import (
	"fmt"
	"log"

	"matscale/internal/core"
	"matscale/internal/experiments"
	"matscale/internal/model"
)

func main() {
	pr := model.Params{Ts: 150, Tw: 3}

	// Part 1 — fixed problem size, growing machine: watch the speedup
	// saturate. Cannon's algorithm on the nCUBE-2-like machine.
	pts, err := experiments.SpeedupSaturation(pr, core.Cannon, 64, []int{1, 4, 16, 64, 256, 1024, 4096})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderSpeedup(64, pts))
	fmt.Println()

	// Part 2 — grow the problem along the isoefficiency function: the
	// efficiency holds wherever the fixed-size run collapsed.
	iso, err := experiments.IsoefficiencyValidation(pr, 0.5, "cannon", []int{4, 16, 64, 256, 1024})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderIso("cannon", iso))
	fmt.Println("-> growing W as Θ(p^1.5) (Table 1's isoefficiency for Cannon) holds E at 0.5.")
}
