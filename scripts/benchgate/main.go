// Command benchgate is the CI benchmark regression gate: it compares
// two `go test -bench` text outputs (the PR revision against main) and
// fails when the geometric-mean ns/op ratio over the gated benchmarks
// exceeds the allowed slowdown. The default scope covers the hot paths
// every run rides on: the simulator message path (both backends) and
// the host matmul kernel in internal/matrix — so a PR that regresses
// `BenchmarkDeliver*`, the simulated algorithm suite, or the serial or
// parallel host kernel by more than 10% geomean fails the bench job
// instead of shipping quietly.
//
// Usage:
//
//	go run ./scripts/benchgate -old bench_main.txt -new bench_pr.txt
//	go run ./scripts/benchgate -old a.txt -new b.txt -pkg 'internal/simulator' -max 0.10
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// defaultPkgPat is the package scope gated when -pkg is not given: the
// two simulator backends plus the host matmul kernel. internal/matrix
// joined the scope when the parallel host kernel landed — a kernel
// regression is as much a shipped slowdown as a simulator one.
const defaultPkgPat = "internal/(simulator|des|matrix)"

// sample accumulates the ns/op values of one benchmark across -count
// repeats; the gate compares per-benchmark means.
type sample struct {
	sum float64
	n   int
}

func (s sample) mean() float64 { return s.sum / float64(s.n) }

// parse reads `go test -bench` text output and returns mean ns/op per
// benchmark, keyed by "pkg.Name", restricted to packages matching
// pkgRe and names matching nameRe.
func parse(r io.Reader, pkgRe, nameRe *regexp.Regexp) (map[string]sample, error) {
	out := map[string]sample{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !pkgRe.MatchString(pkg) || !nameRe.MatchString(fields[0]) {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad ns/op in %q: %v", line, err)
			}
			key := pkg + "." + fields[0]
			s := out[key]
			s.sum += v
			s.n++
			out[key] = s
		}
	}
	return out, sc.Err()
}

// gate compares the two parsed runs and returns the geomean new/old
// ratio over benchmarks present in both, writing a per-benchmark table
// to w. A missing overlap is an error: a gate that silently compares
// nothing would always pass.
func gate(old, new map[string]sample, w io.Writer) (float64, error) {
	var keys []string
	for k := range old {
		if _, ok := new[k]; ok {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return 0, fmt.Errorf("benchgate: no benchmarks in common between the two runs")
	}
	sort.Strings(keys)
	logSum := 0.0
	for _, k := range keys {
		ratio := new[k].mean() / old[k].mean()
		logSum += math.Log(ratio)
		fmt.Fprintf(w, "%-70s old %12.0f ns/op   new %12.0f ns/op   ratio %.3f\n",
			k, old[k].mean(), new[k].mean(), ratio)
	}
	return math.Exp(logSum / float64(len(keys))), nil
}

func parseFile(path string, pkgRe, nameRe *regexp.Regexp) (map[string]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f, pkgRe, nameRe)
}

func main() {
	oldFile := flag.String("old", "", "baseline bench output (main)")
	newFile := flag.String("new", "", "candidate bench output (PR)")
	pkgPat := flag.String("pkg", defaultPkgPat, "regexp of packages to gate on")
	namePat := flag.String("name", ".", "regexp of benchmark names to gate on")
	maxSlow := flag.Float64("max", 0.10, "maximum allowed geomean slowdown (0.10 = +10%)")
	flag.Parse()

	pkgRe, err := regexp.Compile(*pkgPat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	nameRe, err := regexp.Compile(*namePat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	oldS, err := parseFile(*oldFile, pkgRe, nameRe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newS, err := parseFile(*newFile, pkgRe, nameRe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	gm, err := gate(oldS, newS, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("geomean ratio over %s benchmarks: %.3f (gate: %.3f)\n", *pkgPat, gm, 1+*maxSlow)
	if gm > 1+*maxSlow {
		fmt.Fprintf(os.Stderr, "benchgate: geomean slowdown %.1f%% exceeds the %.0f%% gate\n",
			(gm-1)*100, *maxSlow*100)
		os.Exit(1)
	}
}
