package main

import (
	"regexp"
	"strings"
	"testing"
)

const oldRun = `
pkg: matscale/internal/simulator
BenchmarkDeliverCopy256-8     1000    1000 ns/op    0 B/op   0 allocs/op
BenchmarkDeliverCopy256-8     1000    1200 ns/op    0 B/op   0 allocs/op
BenchmarkDeliverOwned256-8    1000    2000 ns/op
pkg: matscale/internal/matrix
BenchmarkMulAddInto/n=256-8   10      50000 ns/op
`

const newRun = `
pkg: matscale/internal/simulator
BenchmarkDeliverCopy256-8     1000    1100 ns/op    0 B/op   0 allocs/op
BenchmarkDeliverOwned256-8    1000    2000 ns/op
BenchmarkDeliverRing16-8      1000    3000 ns/op
pkg: matscale/internal/matrix
BenchmarkMulAddInto/n=256-8   10      90000 ns/op
`

func parseBoth(t *testing.T, pkg, name string) (map[string]sample, map[string]sample) {
	t.Helper()
	pkgRe, nameRe := regexp.MustCompile(pkg), regexp.MustCompile(name)
	o, err := parse(strings.NewReader(oldRun), pkgRe, nameRe)
	if err != nil {
		t.Fatal(err)
	}
	n, err := parse(strings.NewReader(newRun), pkgRe, nameRe)
	if err != nil {
		t.Fatal(err)
	}
	return o, n
}

func TestParseAveragesRepeatsAndFiltersPackages(t *testing.T) {
	o, _ := parseBoth(t, "internal/simulator", ".")
	if len(o) != 2 {
		t.Fatalf("parsed %d simulator benchmarks, want 2: %v", len(o), o)
	}
	copy := o["matscale/internal/simulator.BenchmarkDeliverCopy256-8"]
	if copy.n != 2 || copy.mean() != 1100 {
		t.Errorf("repeat averaging: got n=%d mean=%v, want n=2 mean=1100", copy.n, copy.mean())
	}
}

func TestGateGeomeanOverCommonBenchmarks(t *testing.T) {
	o, n := parseBoth(t, "internal/simulator", ".")
	var sb strings.Builder
	gm, err := gate(o, n, &sb)
	if err != nil {
		t.Fatal(err)
	}
	// Common benchmarks: Copy (1100→1100, ratio 1.0) and Owned
	// (2000→2000, ratio 1.0); the Ring16 benchmark only exists in the
	// new run and must not count.
	if gm < 0.999 || gm > 1.001 {
		t.Errorf("geomean = %v, want 1.0", gm)
	}
	if strings.Contains(sb.String(), "Ring16") {
		t.Error("gate table includes a benchmark with no baseline")
	}
}

func TestGateCatchesRegression(t *testing.T) {
	o, n := parseBoth(t, "internal/matrix", ".")
	gm, err := gate(o, n, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if gm < 1.7 || gm > 1.9 {
		t.Errorf("geomean = %v, want 1.8 (50000→90000)", gm)
	}
}

// TestDefaultScopeCoversKernelAndBothBackends pins the default -pkg
// regexp: the gate must watch both simulator backends AND the host
// matmul kernel, and must not silently widen to unrelated packages.
func TestDefaultScopeCoversKernelAndBothBackends(t *testing.T) {
	re := regexp.MustCompile(defaultPkgPat)
	for _, pkg := range []string{
		"matscale/internal/simulator",
		"matscale/internal/des",
		"matscale/internal/matrix",
	} {
		if !re.MatchString(pkg) {
			t.Errorf("default scope %q misses %s", defaultPkgPat, pkg)
		}
	}
	for _, pkg := range []string{
		"matscale/internal/core",
		"matscale/internal/shm",
		"matscale",
	} {
		if re.MatchString(pkg) {
			t.Errorf("default scope %q unexpectedly gates %s", defaultPkgPat, pkg)
		}
	}
	o, err := parse(strings.NewReader(oldRun), re, regexp.MustCompile("."))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := o["matscale/internal/matrix.BenchmarkMulAddInto/n=256-8"]; !ok {
		t.Errorf("default scope did not pick up the matrix kernel benchmark: %v", o)
	}
}

func TestGateRefusesEmptyOverlap(t *testing.T) {
	o, n := parseBoth(t, "no/such/package", ".")
	if _, err := gate(o, n, &strings.Builder{}); err == nil {
		t.Error("gate accepted an empty benchmark overlap")
	}
}
