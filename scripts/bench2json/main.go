// Command bench2json converts the text output of `go test -bench` into
// a machine-readable JSON document, so CI can archive benchmark results
// (BENCH_pr.json) and downstream tooling can diff them without parsing
// the human format.
//
// Usage:
//
//	go test -bench=. ./... | go run ./scripts/bench2json -out BENCH_pr.json
//	go run ./scripts/bench2json -in bench.txt -out BENCH_pr.json
//	go run ./scripts/bench2json -in new.txt -merge BENCH_pr.json -out BENCH_pr.json
//
// -merge folds the new run into an existing JSON report: benchmarks
// from packages the new input re-measures are replaced, everything else
// is kept, so one job can refresh its slice of BENCH_pr.json without
// clobbering the others'.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one result line: the benchmark name (including any
// sub-benchmark path and the -cpu suffix), the package it came from,
// the iteration count, and every reported metric (ns/op, B/op,
// allocs/op, MB/s, and custom ReportMetric units).
type Benchmark struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole converted run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseBench reads `go test -bench` text output. Unrecognized lines
// (PASS, ok, test logs) are skipped; malformed Benchmark lines are an
// error so CI fails loudly instead of archiving a truncated report.
func parseBench(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			b.Package = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkMul/n=256-16   3   12345678 ns/op   96 B/op   2 allocs/op
func parseBenchLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	// Name, iterations, then (value, unit) pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("bench2json: malformed benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bench2json: bad iteration count in %q: %v", line, err)
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bench2json: bad metric value in %q: %v", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

// merge folds the new run into a prior report: packages the new run
// re-measures replace their old benchmarks wholesale (stale lines from
// a renamed or deleted benchmark must not survive), packages it does
// not touch keep theirs, and the old host metadata fills any gap in the
// new run's (a file-driven run has no goos/goarch/cpu header).
func merge(old, cur *Report) *Report {
	measured := map[string]bool{}
	for _, b := range cur.Benchmarks {
		measured[b.Package] = true
	}
	out := &Report{Goos: cur.Goos, Goarch: cur.Goarch, CPU: cur.CPU, Benchmarks: []Benchmark{}}
	if out.Goos == "" {
		out.Goos = old.Goos
	}
	if out.Goarch == "" {
		out.Goarch = old.Goarch
	}
	if out.CPU == "" {
		out.CPU = old.CPU
	}
	for _, b := range old.Benchmarks {
		if !measured[b.Package] {
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	out.Benchmarks = append(out.Benchmarks, cur.Benchmarks...)
	return out
}

func run(in io.Reader, out io.Writer, old *Report) error {
	rep, err := parseBench(in)
	if err != nil {
		return err
	}
	if old != nil {
		rep = merge(old, rep)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// loadReport reads a prior JSON report for -merge. It must run before
// the -out file is created: -merge and -out commonly name the same
// file, and os.Create truncates.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench2json: -merge: %w", err)
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("bench2json: -merge %s: %w", path, err)
	}
	return rep, nil
}

func main() {
	inFile := flag.String("in", "", "bench output file (default stdin)")
	outFile := flag.String("out", "", "JSON output file (default stdout)")
	mergeFile := flag.String("merge", "", "existing JSON report to fold the new run into")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	var old *Report
	if *mergeFile != "" {
		var err error
		if old, err = loadReport(*mergeFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	var out io.Writer = os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(in, out, old); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
