package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: matscale/internal/shm
cpu: some CPU @ 3.00GHz
BenchmarkMul/n=256-16         	       3	  12345678 ns/op	      96 B/op	       2 allocs/op
BenchmarkMul/n=512-16         	       2	  98765432 ns/op
PASS
ok  	matscale/internal/shm	1.234s
pkg: matscale/internal/simulator
BenchmarkRing-16              	       6	    514027 ns/op	  123.4 MB/s
PASS
ok  	matscale/internal/simulator	0.456s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "3.00GHz") {
		t.Errorf("environment header misparsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	first := rep.Benchmarks[0]
	if first.Package != "matscale/internal/shm" || first.Name != "BenchmarkMul/n=256-16" {
		t.Errorf("first benchmark misattributed: %+v", first)
	}
	if first.Iterations != 3 || first.Metrics["ns/op"] != 12345678 ||
		first.Metrics["B/op"] != 96 || first.Metrics["allocs/op"] != 2 {
		t.Errorf("first benchmark metrics misparsed: %+v", first)
	}
	last := rep.Benchmarks[2]
	if last.Package != "matscale/internal/simulator" || last.Metrics["MB/s"] != 123.4 {
		t.Errorf("package context not tracked across pkg: lines: %+v", last)
	}
}

func TestParseBenchRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-8 notanumber 5 ns/op",
		"BenchmarkX-8 3 bad ns/op",
		"BenchmarkX-8 3 5",
	} {
		if _, err := parseBench(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed line %q", bad)
		}
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out, nil); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("round-tripped %d benchmarks, want 3", len(rep.Benchmarks))
	}
}

func TestMergeReplacesMeasuredPackagesOnly(t *testing.T) {
	old := &Report{
		Goos: "linux", Goarch: "amd64", CPU: "old cpu",
		Benchmarks: []Benchmark{
			{Package: "matscale/internal/shm", Name: "BenchmarkMul/n=256-16", Iterations: 3,
				Metrics: map[string]float64{"ns/op": 1}},
			{Package: "matscale/internal/shm", Name: "BenchmarkGone", Iterations: 1,
				Metrics: map[string]float64{"ns/op": 2}},
			{Package: "matscale/internal/simulator", Name: "BenchmarkRing-16", Iterations: 6,
				Metrics: map[string]float64{"ns/op": 3}},
		},
	}
	fresh := "pkg: matscale/internal/shm\nBenchmarkMul/n=256-16 5 99 ns/op"
	var out bytes.Buffer
	if err := run(strings.NewReader(fresh), &out, old); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	// The re-measured package is replaced wholesale (BenchmarkGone does
	// not survive); the untouched package is kept; host metadata is
	// inherited when the new input has none.
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("merged %d benchmarks, want 2: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	for _, b := range rep.Benchmarks {
		switch b.Package {
		case "matscale/internal/shm":
			if b.Name != "BenchmarkMul/n=256-16" || b.Metrics["ns/op"] != 99 {
				t.Errorf("re-measured package not replaced: %+v", b)
			}
		case "matscale/internal/simulator":
			if b.Metrics["ns/op"] != 3 {
				t.Errorf("untouched package altered: %+v", b)
			}
		default:
			t.Errorf("unexpected package %q", b.Package)
		}
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "old cpu" {
		t.Errorf("host metadata not inherited: %+v", rep)
	}
}

func TestMergePrefersNewMetadata(t *testing.T) {
	old := &Report{Goos: "plan9", CPU: "old cpu"}
	got := merge(old, &Report{Goos: "linux", CPU: ""})
	if got.Goos != "linux" || got.CPU != "old cpu" {
		t.Errorf("metadata merge = %+v", got)
	}
}

func TestLoadtestBenchLineParses(t *testing.T) {
	// The exact shape cmd/matscale-loadtest -bench emits; a format
	// drift on either side must fail this differential check.
	line := "pkg: matscale/cmd/matscale-loadtest\n" +
		"BenchmarkServerLoadtest/clients=1000/overlap=0.50 1 4671104345 ns/op " +
		"1712.7 cells/s 0.4960 cache_hit_rate 4.5418 p99_s 0 errors"
	rep, err := parseBench(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Package != "matscale/cmd/matscale-loadtest" {
		t.Errorf("package = %q", b.Package)
	}
	if b.Metrics["cells/s"] != 1712.7 || b.Metrics["cache_hit_rate"] != 0.496 ||
		b.Metrics["p99_s"] != 4.5418 || b.Metrics["errors"] != 0 {
		t.Errorf("metrics misparsed: %+v", b.Metrics)
	}
}
