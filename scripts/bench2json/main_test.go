package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: matscale/internal/shm
cpu: some CPU @ 3.00GHz
BenchmarkMul/n=256-16         	       3	  12345678 ns/op	      96 B/op	       2 allocs/op
BenchmarkMul/n=512-16         	       2	  98765432 ns/op
PASS
ok  	matscale/internal/shm	1.234s
pkg: matscale/internal/simulator
BenchmarkRing-16              	       6	    514027 ns/op	  123.4 MB/s
PASS
ok  	matscale/internal/simulator	0.456s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "3.00GHz") {
		t.Errorf("environment header misparsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	first := rep.Benchmarks[0]
	if first.Package != "matscale/internal/shm" || first.Name != "BenchmarkMul/n=256-16" {
		t.Errorf("first benchmark misattributed: %+v", first)
	}
	if first.Iterations != 3 || first.Metrics["ns/op"] != 12345678 ||
		first.Metrics["B/op"] != 96 || first.Metrics["allocs/op"] != 2 {
		t.Errorf("first benchmark metrics misparsed: %+v", first)
	}
	last := rep.Benchmarks[2]
	if last.Package != "matscale/internal/simulator" || last.Metrics["MB/s"] != 123.4 {
		t.Errorf("package context not tracked across pkg: lines: %+v", last)
	}
}

func TestParseBenchRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-8 notanumber 5 ns/op",
		"BenchmarkX-8 3 bad ns/op",
		"BenchmarkX-8 3 5",
	} {
		if _, err := parseBench(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed line %q", bad)
		}
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("round-tripped %d benchmarks, want 3", len(rep.Benchmarks))
	}
}
