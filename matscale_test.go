package matscale_test

import (
	"math"
	"strings"
	"testing"

	"matscale"
)

func TestQuickstartFlow(t *testing.T) {
	m := matscale.CM5(64)
	a := matscale.RandomMatrix(64, 64, 1)
	b := matscale.RandomMatrix(64, 64, 2)
	res, err := matscale.GK(m, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := matscale.Mul(a, b)
	// Random float inputs: reduction order may differ, compare with a
	// tight tolerance.
	d := maxDiff(res.C, want)
	if d > 1e-10 {
		t.Fatalf("product differs by %v", d)
	}
	if e := res.Efficiency(); e <= 0 || e >= 1 {
		t.Fatalf("efficiency = %v", e)
	}
}

func TestParallelMulMatchesSerial(t *testing.T) {
	a := matscale.RandomMatrix(65, 65, 3)
	b := matscale.RandomMatrix(65, 65, 4)
	got := matscale.ParallelMul(a, b, 4)
	want := matscale.Mul(a, b)
	if d := maxDiff(got, want); d > 1e-10 {
		t.Fatalf("parallel product differs by %v", d)
	}
}

func TestSelectPerMachine(t *testing.T) {
	// On the nCUBE-like machine with few processors relative to n,
	// Berntsen is predicted (Figure 1's b region).
	if s := matscale.Select(matscale.NCube2(64), 1024); s.Name != "Berntsen" {
		t.Fatalf("NCube2 p=64 n=1024: chose %s, want Berntsen", s.Name)
	}
	// Same machine, p between n^(3/2) and n³: GK.
	if s := matscale.Select(matscale.NCube2(4096), 64); s.Name != "GK" {
		t.Fatalf("NCube2 p=4096 n=64: chose %s, want GK", s.Name)
	}
	// SIMD machine in the interior of the n² < p < n³ band: DNS.
	if s := matscale.Select(matscale.SIMD(1<<15), 64); s.Name != "DNS" {
		t.Fatalf("SIMD p=2^15 n=64: chose %s, want DNS", s.Name)
	}
	// SIMD machine in the n^(3/2) ≤ p ≤ n² band: Cannon.
	if s := matscale.Select(matscale.SIMD(1<<14), 128); s.Name != "Cannon" {
		t.Fatalf("SIMD p=2^14 n=128: chose %s, want Cannon", s.Name)
	}
}

func TestRunAutoRunsChosenAlgorithm(t *testing.T) {
	m := matscale.SIMD(64)
	a := matscale.RandomMatrix(48, 48, 5)
	b := matscale.RandomMatrix(48, 48, 6)
	res, sel, err := matscale.RunAuto(m, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Name == "" || res.C == nil {
		t.Fatalf("RunAuto returned %q, %v", sel.Name, res)
	}
	if d := maxDiff(res.C, matscale.Mul(a, b)); d > 1e-10 {
		t.Fatalf("RunAuto product differs by %v", d)
	}
}

func TestRunAutoFallsBack(t *testing.T) {
	// p = 64 and n = 40: n^1.5=252 ≥ 64 → Berntsen region; Berntsen
	// needs 16 | 40: fails → falls back to GK (4 | 40).
	m := matscale.SIMD(64)
	a := matscale.RandomMatrix(40, 40, 7)
	b := matscale.RandomMatrix(40, 40, 8)
	res, sel, err := matscale.RunAuto(m, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Name != "GK" {
		t.Fatalf("fallback chose %s, want GK", sel.Name)
	}
	if d := maxDiff(res.C, matscale.Mul(a, b)); d > 1e-10 {
		t.Fatalf("product differs by %v", d)
	}
}

func TestRunAutoRejectsBadShapes(t *testing.T) {
	m := matscale.SIMD(4)
	_, _, err := matscale.RunAuto(m, matscale.NewMatrix(3, 4), matscale.NewMatrix(4, 3))
	if err == nil || !strings.Contains(err.Error(), "square") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunAutoNoAlgorithmFits(t *testing.T) {
	// Prime matrix size with a large processor count nothing divides.
	m := matscale.SIMD(64)
	a := matscale.RandomMatrix(7, 7, 9)
	_, _, err := matscale.RunAuto(m, a, a)
	if err == nil || !strings.Contains(err.Error(), "no algorithm accepts") {
		t.Fatalf("err = %v", err)
	}
}

func maxDiff(a, b *matscale.Matrix) float64 {
	var max float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

func TestFacadeVariantAlgorithms(t *testing.T) {
	a := matscale.RandomMatrix(16, 16, 21)
	b := matscale.RandomMatrix(16, 16, 22)
	want := matscale.Mul(a, b)
	cases := []struct {
		name string
		alg  matscale.Algorithm
		m    *matscale.Machine
	}{
		{"FoxMesh", matscale.FoxMesh, matscale.Hypercube(16, 17, 3)},
		{"FoxAsync", matscale.FoxAsync, matscale.Hypercube(16, 17, 3)},
		{"SimpleMemEfficientAllPort", matscale.SimpleMemEfficientAllPort, allPortHC(16)},
		{"SimpleAllPort", matscale.SimpleAllPort, allPortHC(16)},
		{"GKAllPort", matscale.GKAllPort, allPortHC(64)},
		{"DNSWithGrid", func(m *matscale.Machine, a, b *matscale.Matrix) (*matscale.Result, error) {
			return matscale.DNSWithGrid(m, a, b, 8)
		}, matscale.Hypercube(128, 17, 3)},
	}
	for _, c := range cases {
		res, err := c.alg(c.m, a, b)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if d := maxDiff(res.C, want); d > 1e-10 {
			t.Errorf("%s: product differs by %v", c.name, d)
		}
	}
}

func allPortHC(p int) *matscale.Machine {
	m := matscale.Hypercube(p, 17, 3)
	m.AllPort = true
	return m
}
