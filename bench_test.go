// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus real host-machine kernel benchmarks. Each
// experiment bench reports the headline number the paper quotes as a
// benchmark metric (crossover sizes, efficiencies, region fractions),
// so `go test -bench=. -benchmem` doubles as the reproduction run;
// `cmd/matscale` prints the full tables and series.
package matscale_test

import (
	"fmt"
	"io"
	"testing"

	"matscale"
	"matscale/internal/collective"
	"matscale/internal/core"
	"matscale/internal/experiments"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/model"
	"matscale/internal/regions"
	"matscale/internal/shm"
	"matscale/internal/simulator"
	"matscale/internal/tech"
)

// --- Table 1: overheads and isoefficiency -------------------------------

func BenchmarkTable1(b *testing.B) {
	pr := model.Params{Ts: 150, Tw: 3}
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table1(pr)
	}
	if len(out) == 0 {
		b.Fatal("empty table")
	}
}

// --- Figures 1-3: regions of superiority --------------------------------

func benchRegionFigure(b *testing.B, fig int) {
	var m *regions.Map
	for i := 0; i < b.N; i++ {
		var err error
		m, err = experiments.RegionFigure(fig, 30, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Fraction('a'), "gk_region_frac")
	b.ReportMetric(m.Fraction('d'), "dns_region_frac")
}

func BenchmarkFigure1RegionsNCube2(b *testing.B) { benchRegionFigure(b, 1) }
func BenchmarkFigure2RegionsFastHC(b *testing.B) { benchRegionFigure(b, 2) }
func BenchmarkFigure3RegionsSIMD(b *testing.B)   { benchRegionFigure(b, 3) }

// --- Figures 4-5: CM-5 efficiency curves --------------------------------

// Representative single points keep the per-iteration cost bounded; the
// full sweeps run once each and report the crossover matrix size.

func benchCM5Point(b *testing.B, alg core.Algorithm, n, p int) {
	a := matrix.Random(n, n, uint64(n))
	c := matrix.Random(n, n, uint64(n)+1)
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = alg(machine.CM5(p), a, c)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Efficiency(), "efficiency")
	b.ReportMetric(res.Sim.Tp, "virtual_Tp")
}

func BenchmarkFigure4CannonP64N96(b *testing.B) { benchCM5Point(b, core.Cannon, 96, 64) }
func BenchmarkFigure4GKP64N96(b *testing.B)     { benchCM5Point(b, core.GK, 96, 64) }
func BenchmarkFigure5CannonP484N110(b *testing.B) {
	benchCM5Point(b, core.Cannon, 110, 484)
}
func BenchmarkFigure5GKP512N112(b *testing.B) { benchCM5Point(b, core.GK, 112, 512) }

func BenchmarkFigure4FullSweep(b *testing.B) {
	var f *experiments.FigureEfficiency
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiments.EfficiencyFigure(4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.CrossoverN, "crossover_n")
	b.ReportMetric(f.PredictedCrossover, "predicted_n")
}

func BenchmarkFigure5FullSweep(b *testing.B) {
	var f *experiments.FigureEfficiency
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiments.EfficiencyFigure(5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.CrossoverN, "crossover_n")
	b.ReportMetric(f.PredictedCrossover, "predicted_n")
}

// --- Section 6: pairwise crossovers -------------------------------------

func BenchmarkSection6Crossovers(b *testing.B) {
	var cutoff float64
	for i := 0; i < b.N; i++ {
		cutoff = regions.GKBeatsCannonAlways()
	}
	b.ReportMetric(cutoff, "gk_beats_cannon_p")
}

// --- Section 7: all-port communication ----------------------------------

func BenchmarkSection7AllPort(b *testing.B) {
	pr := model.Params{Ts: 10, Tw: 3}
	var s string
	for i := 0; i < b.N; i++ {
		s = experiments.AllPortReport(pr)
	}
	if len(s) == 0 {
		b.Fatal("empty report")
	}
}

func BenchmarkSection7SimpleAllPortSim(b *testing.B) {
	m := machine.Hypercube(64, 10, 3)
	m.AllPort = true
	a := matrix.Random(64, 64, 1)
	c := matrix.Random(64, 64, 2)
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.SimpleAllPort(m, a, c)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Sim.Tp, "virtual_Tp")
}

// --- Section 8: technology tradeoffs ------------------------------------

func BenchmarkSection8Technology(b *testing.B) {
	pr := model.Params{Ts: 0.5, Tw: 3}
	var more, faster float64
	for i := 0; i < b.N; i++ {
		var err error
		more, err = tech.MoreProcessorsFactor(pr, model.CannonTo, 1<<14, 0.5, 10)
		if err != nil {
			b.Fatal(err)
		}
		faster, err = tech.FasterProcessorsFactor(pr, model.CannonTo, 1<<14, 0.5, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(more, "more_procs_W_factor")
	b.ReportMetric(faster, "faster_procs_W_factor")
}

// --- Equation validation (Eqs. 2-7, 16-18) ------------------------------

func BenchmarkEquationValidationGK(b *testing.B) {
	pr := model.Params{Ts: 17, Tw: 3}
	m := machine.Hypercube(64, pr.Ts, pr.Tw)
	a := matrix.Random(16, 16, 1)
	c := matrix.Random(16, 16, 2)
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.GK(m, a, c)
		if err != nil {
			b.Fatal(err)
		}
	}
	want := model.ExactGKTp(pr, 16, 64)
	if res.Sim.Tp != want {
		b.Fatalf("Tp = %v, want Eq.(7) = %v", res.Sim.Tp, want)
	}
}

// --- Simulated algorithm suite at a common operating point --------------

func benchSim(b *testing.B, alg core.Algorithm, n, p int) {
	m := machine.Hypercube(p, 17, 3)
	a := matrix.Random(n, n, uint64(n))
	c := matrix.Random(n, n, uint64(n)+1)
	for i := 0; i < b.N; i++ {
		if _, err := alg(m, a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimSimpleN64P16(b *testing.B)   { benchSim(b, core.Simple, 64, 16) }
func BenchmarkSimCannonN64P16(b *testing.B)   { benchSim(b, core.Cannon, 64, 16) }
func BenchmarkSimFoxN64P16(b *testing.B)      { benchSim(b, core.Fox, 64, 16) }
func BenchmarkSimBerntsenN64P64(b *testing.B) { benchSim(b, core.Berntsen, 64, 64) }
func BenchmarkSimGKN64P64(b *testing.B)       { benchSim(b, core.GK, 64, 64) }

// BenchmarkCannonHostTime measures host wall-clock of a full Cannon
// simulation at p=64: 64 goroutines rolling blocks every step is the
// heaviest steady-state load on the pooled zero-copy message path and
// the sharded mailboxes.
func BenchmarkCannonHostTime(b *testing.B) { benchSim(b, core.Cannon, 128, 64) }

func BenchmarkSimDNSN16P256(b *testing.B) {
	m := machine.Hypercube(256, 17, 3)
	a := matrix.Random(16, 16, 1)
	c := matrix.Random(16, 16, 2)
	for i := 0; i < b.N; i++ {
		if _, err := core.DNSWithGrid(m, a, c, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Real host kernels ---------------------------------------------------

func benchKernel(b *testing.B, n int, f func(a, c *matrix.Dense) *matrix.Dense) {
	a := matrix.Random(n, n, 1)
	c := matrix.Random(n, n, 2)
	b.SetBytes(int64(8 * n * n * 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(a, c)
	}
}

func BenchmarkHostSerialN256(b *testing.B) {
	benchKernel(b, 256, func(a, c *matrix.Dense) *matrix.Dense { return matrix.Mul(a, c) })
}
func BenchmarkHostBlockedN256(b *testing.B) {
	benchKernel(b, 256, func(a, c *matrix.Dense) *matrix.Dense { return matrix.MulBlocked(a, c, 64) })
}
func BenchmarkHostParallelN256(b *testing.B) {
	benchKernel(b, 256, func(a, c *matrix.Dense) *matrix.Dense { return matscale.ParallelMul(a, c, 0) })
}
func BenchmarkHostParallelN512(b *testing.B) {
	benchKernel(b, 512, func(a, c *matrix.Dense) *matrix.Dense { r, _ := shm.Mul(a, c, 0, 64); return r })
}
func BenchmarkHostParallel1WorkerN512(b *testing.B) {
	benchKernel(b, 512, func(a, c *matrix.Dense) *matrix.Dense { r, _ := shm.Mul(a, c, 1, 64); return r })
}

// --- Methodology validation -----------------------------------------------

func BenchmarkIsoefficiencyValidationCannon(b *testing.B) {
	pr := model.Params{Ts: 17, Tw: 3}
	var pts []experiments.IsoPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.IsoefficiencyValidation(pr, 0.5, "cannon", []int{4, 16, 64, 256})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[len(pts)-1].EMeasured, "final_efficiency")
}

func BenchmarkPredictionAccuracy(b *testing.B) {
	pr := model.Params{Ts: 17, Tw: 3}
	var outcomes []experiments.PredictionOutcome
	for i := 0; i < b.N; i++ {
		var err error
		outcomes, err = experiments.PredictionAccuracy(pr, []int{16, 32, 48, 64}, []int{64, 256, 512})
		if err != nil {
			b.Fatal(err)
		}
	}
	hits := 0
	for _, o := range outcomes {
		if o.Predicted == o.Actual {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(len(outcomes)), "hit_rate")
}

func BenchmarkSimFoxMeshN64P16(b *testing.B) {
	m := machine.Mesh(16, 17, 3)
	a := matrix.Random(64, 64, 1)
	c := matrix.Random(64, 64, 2)
	for i := 0; i < b.N; i++ {
		if _, err := core.FoxMesh(m, a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Collective layer -----------------------------------------------------

func benchCollective(b *testing.B, words int, f func(pr *simulator.Proc, group []int, mine []float64)) {
	m := machine.Hypercube(64, 17, 3)
	group := make([]int, 64)
	for i := range group {
		group[i] = i
	}
	for i := 0; i < b.N; i++ {
		_, err := simulator.Run(m, func(pr *simulator.Proc) {
			f(pr, group, make([]float64, words))
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectiveAllGather(b *testing.B) {
	benchCollective(b, 256, func(pr *simulator.Proc, group []int, mine []float64) {
		collective.AllGather(pr, group, 1, mine)
	})
}

func BenchmarkCollectiveBroadcast(b *testing.B) {
	benchCollective(b, 4096, func(pr *simulator.Proc, group []int, mine []float64) {
		var data []float64
		if pr.Rank() == 0 {
			data = mine
		}
		collective.Broadcast(pr, group, 0, 1, data)
	})
}

func BenchmarkCollectiveAllToAll(b *testing.B) {
	benchCollective(b, 256, func(pr *simulator.Proc, group []int, mine []float64) {
		collective.AllToAll(pr, group, 1, mine)
	})
}

func BenchmarkCollectiveReduceScatter(b *testing.B) {
	benchCollective(b, 4096, func(pr *simulator.Proc, group []int, mine []float64) {
		collective.ReduceScatter(pr, group, 1, mine)
	})
}

func BenchmarkSimFoxAsyncN64P16(b *testing.B) {
	m := machine.Mesh(16, 17, 3)
	a := matrix.Random(64, 64, 1)
	c := matrix.Random(64, 64, 2)
	for i := 0; i < b.N; i++ {
		if _, err := core.FoxAsync(m, a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHostCannonParallelN256(b *testing.B) {
	benchKernel(b, 256, func(a, c *matrix.Dense) *matrix.Dense {
		out, err := shm.CannonParallel(a, c, 4)
		if err != nil {
			b.Fatal(err)
		}
		return out
	})
}

// --- Parameterized sweeps (sub-benchmarks) --------------------------------

// BenchmarkAlgorithmsAcrossScale runs the core algorithm suite over a
// grid of (n, p), reporting the simulated efficiency of each point —
// the data behind the paper's comparative claims, organized as
// sub-benchmarks for `-bench AlgorithmsAcrossScale/GK`.
func BenchmarkAlgorithmsAcrossScale(b *testing.B) {
	type cfg struct {
		name string
		alg  core.Algorithm
		n, p int
	}
	var cfgs []cfg
	for _, np := range [][2]int{{32, 16}, {64, 16}, {64, 64}} {
		cfgs = append(cfgs,
			cfg{"Simple", core.Simple, np[0], np[1]},
			cfg{"Cannon", core.Cannon, np[0], np[1]},
			cfg{"Fox", core.Fox, np[0], np[1]},
		)
	}
	for _, np := range [][2]int{{32, 64}, {64, 64}, {64, 512}} {
		cfgs = append(cfgs,
			cfg{"GK", core.GK, np[0], np[1]},
			cfg{"Berntsen", core.Berntsen, np[0], np[1]},
		)
	}
	for _, c := range cfgs {
		c := c
		b.Run(fmt.Sprintf("%s/n%d/p%d", c.name, c.n, c.p), func(b *testing.B) {
			m := machine.Hypercube(c.p, 17, 3)
			x := matrix.Random(c.n, c.n, 1)
			y := matrix.Random(c.n, c.n, 2)
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = c.alg(m, x, y)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Efficiency(), "efficiency")
		})
	}
}

// BenchmarkHostWorkerScaling measures real wall-clock scaling of the
// shared-memory kernel across worker counts.
func BenchmarkHostWorkerScaling(b *testing.B) {
	a := matrix.Random(384, 384, 1)
	c := matrix.Random(384, 384, 2)
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			b.SetBytes(int64(8 * 384 * 384 * 3))
			for i := 0; i < b.N; i++ {
				if _, err := shm.Mul(a, c, w, 64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Sweep engine: serial vs parallel wall clock ---------------------------

// BenchmarkSweepGridWorkers runs a fixed clean-vs-faulted experiment
// grid through matscale.Sweep at 1, 4 and all-CPU host workers. The
// results are byte-identical across the sub-benchmarks (the engine's
// contract; see docs/SWEEP.md) — only the wall clock differs, which is
// exactly what this measures. On a single-core host the variants tie;
// the speedup appears with the cores.
func BenchmarkSweepGridWorkers(b *testing.B) {
	spec := &matscale.SweepSpec{
		Algorithms: []string{"cannon", "gk"},
		Machines:   []string{"custom"},
		Ts:         17, Tw: 3,
		Ps:     []int{16, 64},
		Ns:     []int{16, 32, 64},
		Faults: []string{"", "straggler=2@rank0,seed=42"},
		Seed:   1,
	}
	for _, w := range []int{1, 4, 0} {
		w := w
		name := fmt.Sprintf("workers%d", w)
		if w == 0 {
			name = "workersNumCPU"
		}
		b.Run(name, func(b *testing.B) {
			var res *matscale.SweepResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = matscale.Sweep(spec, matscale.WithWorkers(w))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Ran), "cells_ran")
		})
	}
}

// BenchmarkRunAllWorkers measures the full reproduction (quick=false:
// every table, figure and validation) serial versus on a 4-worker
// pool — the repository's headline serial-vs-parallel wall-clock
// comparison. The emitted bytes are identical; compare the ns/op of
// the two sub-benchmarks for the speedup.
func BenchmarkRunAllWorkers(b *testing.B) {
	for _, w := range []int{1, 4} {
		w := w
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := matscale.RunAll(io.Discard, false, matscale.WithWorkers(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations -------------------------------------------------------------

// BenchmarkGKVariants ablates the GK algorithm's broadcast scheme at a
// fixed configuration: naive binomial (Eq. 7), Johnsson-Ho (§5.4.1),
// all-port (Eq. 17), and the fully connected CM-5 (Eq. 18).
func BenchmarkGKVariants(b *testing.B) {
	n, p := 64, 64
	a := matrix.Random(n, n, 1)
	c := matrix.Random(n, n, 2)
	cases := []struct {
		name string
		alg  core.Algorithm
		mk   func() *machine.Machine
	}{
		{"naive", core.GK, func() *machine.Machine { return machine.Hypercube(p, 17, 3) }},
		{"johnsson-ho", core.GKImprovedBroadcast, func() *machine.Machine { return machine.Hypercube(p, 17, 3) }},
		{"all-port", core.GKAllPort, func() *machine.Machine {
			m := machine.Hypercube(p, 17, 3)
			m.AllPort = true
			return m
		}},
		{"cm5", core.GK, func() *machine.Machine {
			m := machine.CM5(p)
			m.Ts, m.Tw = 17, 3
			return m
		}},
	}
	for _, cs := range cases {
		cs := cs
		b.Run(cs.name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = cs.alg(cs.mk(), a, c)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Sim.Tp, "virtual_Tp")
		})
	}
}

// BenchmarkContentionTrackingOverhead measures what the link-tracking
// mode costs in wall-clock time (its virtual-time results are
// identical for the paper's algorithms).
func BenchmarkContentionTrackingOverhead(b *testing.B) {
	a := matrix.Random(32, 32, 1)
	c := matrix.Random(32, 32, 2)
	for _, tracked := range []bool{false, true} {
		tracked := tracked
		name := "off"
		if tracked {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := machine.Hypercube(64, 17, 3)
				m.TrackContention = tracked
				if _, err := core.GK(m, a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
