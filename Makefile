GO ?= go

.PHONY: all build test race bench bench-smoke verify repro clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark — catches bit-rot without the cost.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# End-to-end self-check: every algorithm vs its paper equation.
verify:
	$(GO) run ./cmd/matscale verify

# Regenerate the complete reproduction (all tables and figures).
repro:
	$(GO) run ./cmd/matscale all | tee REPRODUCTION.txt

clean:
	rm -f REPRODUCTION.txt test_output.txt bench_output.txt
