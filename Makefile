GO ?= go

.PHONY: all build test race bench verify repro clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/simulator ./internal/core ./internal/shm

bench:
	$(GO) test -bench=. -benchmem ./...

# End-to-end self-check: every algorithm vs its paper equation.
verify:
	$(GO) run ./cmd/matscale verify

# Regenerate the complete reproduction (all tables and figures).
repro:
	$(GO) run ./cmd/matscale all | tee REPRODUCTION.txt

clean:
	rm -f REPRODUCTION.txt test_output.txt bench_output.txt
