GO ?= go

.PHONY: all build test race bench bench-smoke bench-json bench-gate backend-equivalence checkpoint-equivalence kernel-equivalence sweep-determinism lint vet vet-tool fuzz cover verify repro server loadtest loadtest-json clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark — catches bit-rot without the cost.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# The CI bench protocol: short repeated runs plus the JSON archive.
bench-json:
	$(GO) test -bench=. -benchtime=3x -count=2 -run='^$$' ./... | tee bench_pr.txt
	$(GO) run ./scripts/bench2json -in bench_pr.txt -out BENCH_pr.json

# The CI regression gate: fail on >10% geomean ns/op slowdown in the
# engine benchmarks (both backends) and the host matmul kernel between
# two bench-json style runs.
BENCH_OLD ?= bench_main.txt
BENCH_NEW ?= bench_pr.txt
bench-gate:
	$(GO) run ./scripts/benchgate -old $(BENCH_OLD) -new $(BENCH_NEW) -pkg 'internal/(simulator|des|matrix)' -max 0.10

# The cross-backend differential suite under the race detector: the
# goroutine and discrete-event engines must produce byte-identical
# Result/Metrics/CSV/Chrome-trace output (docs/BACKENDS.md).
backend-equivalence:
	$(GO) test -race -count=1 ./internal/des
	$(GO) test -race -count=1 -run 'TestWithBackend' .

# The checkpoint/resume differential suites under the race detector: a
# resumed run/sweep/job must produce byte-identical output to an
# uninterrupted one, at every cut (docs/BACKENDS.md, docs/SERVER.md).
checkpoint-equivalence:
	$(GO) test -race -count=1 ./internal/checkpoint
	$(GO) test -race -count=1 -run 'TestResumeDifferential|TestCheckpoint|TestSuspend' ./internal/des ./internal/sweep ./internal/server
	$(GO) test -race -count=1 -run 'TestCheckpoint|TestRestore|TestResume' .

# The host-kernel differential suite under the race detector: the
# parallel matmul kernel must be byte-identical to the serial kernel at
# workers ∈ {1, 2, 4, NumCPU}, on both partition axes
# (docs/PERFORMANCE.md). Mirrors sweep-determinism for the kernel.
kernel-equivalence:
	$(GO) test -race -count=1 -run 'TestKernelWorkerEquivalence|TestMulAddIntoParallel' ./internal/matrix

# The CI determinism check: the same sweep spec must emit byte-identical
# CSV at 1 and 8 host workers, under the race detector (docs/SWEEP.md).
SWEEP_ARGS = sweep -alg cannon,gk,berntsen -machine custom -ts 17 -n 16,32 -p 16,64 -faults ';straggler=2@rank0,seed=42'
sweep-determinism:
	$(GO) build -race -o bin/matscale ./cmd/matscale
	./bin/matscale $(SWEEP_ARGS) -jobs 1 -csv sweep_serial.csv
	./bin/matscale $(SWEEP_ARGS) -jobs 8 -csv sweep_parallel.csv
	cmp sweep_serial.csv sweep_parallel.csv
	@echo "sweep output is byte-identical at -jobs=1 and -jobs=8"

# Same linters as CI (.golangci.yml); requires golangci-lint on PATH.
lint: vet
	golangci-lint run

# Build the repo's own vettool (the matscale-vet analyzer suite; see
# docs/ANALYSIS.md) and print its path — `-s` makes the path the only
# stdout output, so `go vet -vettool=$$(make -s vet-tool) ./...` works.
vet-tool:
	@$(GO) build -o bin/matscale-vet ./cmd/matscale-vet 1>&2
	@echo $(CURDIR)/bin/matscale-vet

# Run the determinism/cost-model analyzers over the whole module,
# reusing the binary vet-tool just built.
vet: vet-tool
	$(GO) vet -vettool=$(CURDIR)/bin/matscale-vet ./...

# The CI fuzz targets, briefly.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) -run='^$$' ./internal/faults
	$(GO) test -fuzz=FuzzRandomPrograms -fuzztime=$(FUZZTIME) -run='^$$' ./internal/simulator
	$(GO) test -fuzz=FuzzFaultedPrograms -fuzztime=$(FUZZTIME) -run='^$$' ./internal/simulator
	$(GO) test -fuzz=FuzzBackendEquivalence -fuzztime=$(FUZZTIME) -run='^$$' ./internal/des
	$(GO) test -fuzz=FuzzCheckpointRoundTrip -fuzztime=$(FUZZTIME) -run='^$$' ./internal/checkpoint
	$(GO) test -fuzz=FuzzKernelWorkerEquivalence -fuzztime=$(FUZZTIME) -run='^$$' ./internal/matrix

# Coverage with the CI floor check (75% of statements in internal/...).
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./internal/...
	$(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print "total: " $$3 "%"; if ($$3 + 0 < 75) { print "coverage fell below the 75% floor"; exit 1 }}'

# End-to-end self-check: every algorithm vs its paper equation.
verify:
	$(GO) run ./cmd/matscale verify

# Regenerate the complete reproduction (all tables and figures).
repro:
	$(GO) run ./cmd/matscale all | tee REPRODUCTION.txt

# Build and run the HTTP sweep server (docs/SERVER.md).
server:
	$(GO) build -o bin/matscale-server ./cmd/matscale-server
	./bin/matscale-server

# The CI load-test protocol: 200 concurrent clients, half of them
# submitting overlapping specs, against an in-process server.
LOADTEST_ARGS ?= -clients 200 -overlap 0.5
loadtest:
	$(GO) build -o bin/matscale-loadtest ./cmd/matscale-loadtest
	./bin/matscale-loadtest $(LOADTEST_ARGS)

# Load test in bench format, folded into the benchmark archive the way
# the CI server job does it.
loadtest-json:
	$(GO) build -o bin/matscale-loadtest ./cmd/matscale-loadtest
	./bin/matscale-loadtest $(LOADTEST_ARGS) -bench | tee loadtest_bench.txt
	$(GO) run ./scripts/bench2json -in loadtest_bench.txt -merge BENCH_pr.json -out BENCH_pr.json

clean:
	rm -f REPRODUCTION.txt test_output.txt bench_output.txt bench_pr.txt bench_main.txt bench_delta.txt coverage.out sweep_serial.csv sweep_parallel.csv
	rm -f loadtest_bench.txt events_cold.txt events_warm.txt result_cold.json result_warm.json
	rm -rf bin
