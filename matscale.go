// Package matscale is a library for studying the performance and
// scalability of parallel dense matrix multiplication, reproducing
// Gupta & Kumar, "Scalability of Parallel Algorithms for Matrix
// Multiplication" (ICPP 1993 / TR 91-54).
//
// It provides:
//
//   - the parallel formulations the paper analyzes — the simple
//     all-to-all-broadcast algorithm, Cannon's, Fox's, Berntsen's, the
//     DNS algorithm, and the paper's GK algorithm with its improved-
//     broadcast, CM-5 and all-port variants — executing for real on a
//     deterministic virtual-time multicomputer whose measured times
//     equal the paper's closed-form equations;
//   - machine models (nCUBE-2-like, SIMD/CM-2-like, CM-5, arbitrary
//     hypercubes) with the paper's ts/tw communication cost model;
//   - the analytic toolkit: parallel-time and overhead functions,
//     isoefficiency solving, equal-overhead crossovers and
//     best-algorithm region maps;
//   - RunAuto and Select, the paper's concluding suggestion realized:
//     "all the algorithms can be stored in a library and the best
//     algorithm can be pulled out by a smart preprocessor depending on
//     the various parameters";
//   - a real shared-memory parallel multiply for the host machine.
//
// Quick start:
//
//	m := matscale.CM5(64)
//	a := matscale.RandomMatrix(128, 128, 1)
//	b := matscale.RandomMatrix(128, 128, 2)
//	res, err := matscale.GK(m, a, b)
//	// res.C is the product; res.Efficiency(), res.Sim.Tp are the
//	// virtual-time measurements.
package matscale

import (
	"matscale/internal/core"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/model"
)

// Core types, re-exported.
type (
	// Matrix is a row-major dense matrix.
	Matrix = matrix.Dense
	// Machine couples a topology with the ts/tw cost model.
	Machine = machine.Machine
	// Result is the outcome of one parallel multiplication: the product
	// and the virtual-time measurements.
	Result = core.Result
	// Algorithm runs one parallel formulation on a machine.
	Algorithm = core.Algorithm
	// Params carries the normalized communication constants ts and tw
	// for the analytic model.
	Params = model.Params
)

// Matrix constructors and the serial baseline.
var (
	// NewMatrix returns a zero r×c matrix.
	NewMatrix = matrix.New
	// RandomMatrix returns a deterministic pseudo-random matrix.
	RandomMatrix = matrix.Random
	// Identity returns the n×n identity.
	Identity = matrix.Identity
	// Mul is the conventional O(n³) serial multiplication — the paper's
	// W = n³ baseline.
	Mul = matrix.Mul
	// ReadCSV parses a matrix from comma-separated rows.
	ReadCSV = matrix.ReadCSV
	// WriteCSV writes a matrix as comma-separated rows.
	WriteCSV = matrix.WriteCSV
)

// ParallelMul multiplies on the host machine with real goroutine
// workers (0 = all CPUs) — the library's non-simulated fast path.
//
// Deprecated: ParallelMul panics on an inner-dimension mismatch. Use
// HostMul, which returns an error instead:
//
//	c, err := matscale.HostMul(a, b, matscale.WithWorkers(n))
func ParallelMul(a, b *Matrix, workers int) *Matrix {
	c, err := HostMul(a, b, WithWorkers(workers))
	if err != nil {
		panic("matscale: " + err.Error())
	}
	return c
}

// Machine presets (Sections 6 and 9 of the paper).
var (
	// NCube2 is a store-and-forward hypercube with ts=150, tw=3 (Figure 1).
	NCube2 = machine.NCube2
	// FutureHypercube has ts=10, tw=3 (Figure 2).
	FutureHypercube = machine.FutureHypercube
	// SIMD is a CM-2-like machine with ts=0.5, tw=3 (Figure 3).
	SIMD = machine.SIMD
	// CM5 is a fully connected machine with the paper's measured CM-5
	// constants (Section 9).
	CM5 = machine.CM5
	// Hypercube builds a store-and-forward hypercube with arbitrary
	// constants.
	Hypercube = machine.Hypercube
)

// The parallel formulations (Section 4), each returning the verified
// product and virtual-time measurements.
var (
	// Simple is the all-to-all broadcast algorithm (§4.1, Eq. 2).
	Simple Algorithm = core.Simple
	// Cannon is Cannon's algorithm (§4.2, Eq. 3).
	Cannon Algorithm = core.Cannon
	// Fox is Fox's algorithm with binomial row broadcasts (§4.3).
	Fox Algorithm = core.Fox
	// FoxPipelined is Fox's algorithm with pipelined broadcasts (Eq. 4).
	FoxPipelined Algorithm = core.FoxPipelined
	// Berntsen is Berntsen's subcube algorithm (§4.4, Eq. 5).
	Berntsen Algorithm = core.Berntsen
	// DNS is the Dekel–Nassimi–Sahni algorithm (§4.5, Eq. 6).
	DNS Algorithm = core.DNS
	// GK is the paper's contribution (§4.6, Eq. 7 / Eq. 18 on the CM-5).
	GK Algorithm = core.GK
	// GKImprovedBroadcast uses the Johnsson–Ho broadcast (§5.4.1).
	GKImprovedBroadcast Algorithm = core.GKImprovedBroadcast
	// GKAllPort uses simultaneous all-port communication (§7.2, Eq. 17).
	GKAllPort Algorithm = core.GKAllPort
	// SimpleAllPort is the all-port simple algorithm (§7.1, Eq. 16).
	SimpleAllPort Algorithm = core.SimpleAllPort
	// SimpleMemEfficientAllPort is the constant-storage all-port
	// streaming variant in the spirit of Ho–Johnsson–Edelman [18]
	// (§7.1).
	SimpleMemEfficientAllPort Algorithm = core.SimpleMemEfficientAllPort
	// FoxMesh is Fox's algorithm with mesh row relays (§4.3's mesh
	// expression).
	FoxMesh Algorithm = core.FoxMesh
	// FoxAsync is the asynchronous Fox execution (§4.3).
	FoxAsync Algorithm = core.FoxAsync
)

// DNSWithGrid runs the DNS algorithm on a block grid coarser than one
// element per processor.
//
// Deprecated: use Run with the WithDNSGrid option, which composes with
// the other observability options:
//
//	res, err := matscale.Run(matscale.DNS, m, a, b, matscale.WithDNSGrid(q))
var DNSWithGrid = core.DNSWithGrid
