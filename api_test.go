package matscale_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"matscale"
)

func TestRunWithMetrics(t *testing.T) {
	m := matscale.NCube2(64)
	a := matscale.RandomMatrix(16, 16, 1)
	b := matscale.RandomMatrix(16, 16, 2)
	res, err := matscale.Run(matscale.GK, m, a, b, matscale.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "GK" {
		t.Fatalf("Algorithm = %q, want GK", res.Algorithm)
	}
	mt := res.Metrics
	if mt == nil {
		t.Fatal("Metrics nil with WithMetrics")
	}
	if mt.W != 16*16*16 {
		t.Fatalf("W = %v", mt.W)
	}
	if want := res.Overhead(); mt.Overhead != want {
		t.Fatalf("Metrics.Overhead = %v, Result.Overhead = %v", mt.Overhead, want)
	}
	for _, r := range mt.Ranks {
		if got := r.Compute + r.Send + r.Idle; got != mt.Tp {
			t.Fatalf("rank %d budget %v != Tp %v", r.Rank, got, mt.Tp)
		}
	}
	// The caller's machine is never mutated.
	if m.CollectMetrics {
		t.Fatal("Run mutated the caller's machine")
	}
}

func TestRunWithoutOptionsMatchesDirectCall(t *testing.T) {
	m := matscale.NCube2(16)
	a := matscale.RandomMatrix(8, 8, 1)
	b := matscale.RandomMatrix(8, 8, 2)
	direct, err := matscale.Cannon(m, a, b)
	if err != nil {
		t.Fatal(err)
	}
	viaRun, err := matscale.Run(matscale.Cannon, m, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Sim.Tp != viaRun.Sim.Tp {
		t.Fatalf("Tp differs: %v vs %v", direct.Sim.Tp, viaRun.Sim.Tp)
	}
	if viaRun.Metrics != nil {
		t.Fatal("Metrics populated without WithMetrics")
	}
}

func TestRunWithTrace(t *testing.T) {
	var buf bytes.Buffer
	res, err := matscale.Run(matscale.Cannon, matscale.NCube2(16),
		matscale.RandomMatrix(8, 8, 1), matscale.RandomMatrix(8, 8, 2),
		matscale.WithTrace(&buf))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WithTrace wrote invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("WithTrace wrote no events")
	}
	if res.Sim.Trace == nil {
		t.Fatal("trace not retained on Result.Sim.Trace")
	}
}

func TestWithDNSGridMatchesDeprecatedFunction(t *testing.T) {
	m := matscale.NCube2(64)
	a := matscale.RandomMatrix(16, 16, 1)
	b := matscale.RandomMatrix(16, 16, 2)
	old, err := matscale.DNSWithGrid(m, a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	viaOpt, err := matscale.Run(matscale.DNS, m, a, b, matscale.WithDNSGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if old.Sim.Tp != viaOpt.Sim.Tp || old.Sim.Messages != viaOpt.Sim.Messages {
		t.Fatalf("WithDNSGrid diverges from DNSWithGrid: Tp %v vs %v", old.Sim.Tp, viaOpt.Sim.Tp)
	}
	// nil algorithm with the grid option also runs DNS.
	viaNil, err := matscale.Run(nil, m, a, b, matscale.WithDNSGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if viaNil.Sim.Tp != old.Sim.Tp {
		t.Fatalf("Run(nil, WithDNSGrid) Tp = %v, want %v", viaNil.Sim.Tp, old.Sim.Tp)
	}
}

func TestWithDNSGridRejectsOtherAlgorithms(t *testing.T) {
	_, err := matscale.Run(matscale.Cannon, matscale.NCube2(64),
		matscale.RandomMatrix(16, 16, 1), matscale.RandomMatrix(16, 16, 2),
		matscale.WithDNSGrid(4))
	if err == nil || !strings.Contains(err.Error(), "WithDNSGrid") {
		t.Fatalf("err = %v, want a WithDNSGrid combination error", err)
	}
}

func TestRunNilAutoSelects(t *testing.T) {
	res, err := matscale.Run(nil, matscale.NCube2(64),
		matscale.RandomMatrix(16, 16, 1), matscale.RandomMatrix(16, 16, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm == "" {
		t.Fatal("auto-selected result has no algorithm name")
	}
}

func TestRunAutoSelection(t *testing.T) {
	m := matscale.NCube2(64)
	res, sel, err := matscale.RunAuto(m, matscale.RandomMatrix(16, 16, 1),
		matscale.RandomMatrix(16, 16, 2), matscale.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Name == "" || sel.Algorithm == nil {
		t.Fatalf("Selection = %+v", sel)
	}
	if res.Algorithm != sel.Name {
		t.Fatalf("result ran %q but selection says %q", res.Algorithm, sel.Name)
	}
	if sel.PredictedTp <= 0 {
		t.Fatalf("PredictedTp = %v, want > 0", sel.PredictedTp)
	}
	if res.Metrics == nil {
		t.Fatal("RunAuto dropped the WithMetrics option")
	}
}

func TestWithBackendRunEquivalence(t *testing.T) {
	m := matscale.NCube2(64)
	a := matscale.RandomMatrix(16, 16, 1)
	b := matscale.RandomMatrix(16, 16, 2)
	g, err := matscale.Run(matscale.Cannon, m, a, b, matscale.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	e, err := matscale.Run(matscale.Cannon, m, a, b,
		matscale.WithMetrics(), matscale.WithBackend(matscale.Events))
	if err != nil {
		t.Fatal(err)
	}
	if m.Backend != matscale.Goroutines {
		t.Fatal("WithBackend mutated the caller's machine")
	}
	if !reflect.DeepEqual(g.Sim, e.Sim) {
		t.Fatalf("backends differ: goroutines Tp=%v, events Tp=%v", g.Sim.Tp, e.Sim.Tp)
	}
}

func TestWithBackendRunAutoAndSweep(t *testing.T) {
	m := matscale.NCube2(64)
	a := matscale.RandomMatrix(16, 16, 1)
	b := matscale.RandomMatrix(16, 16, 2)
	g, gsel, err := matscale.RunAuto(m, a, b)
	if err != nil {
		t.Fatal(err)
	}
	e, esel, err := matscale.RunAuto(m, a, b, matscale.WithBackend(matscale.Events))
	if err != nil {
		t.Fatal(err)
	}
	if gsel.Name != esel.Name || !reflect.DeepEqual(g.Sim, e.Sim) {
		t.Fatalf("RunAuto diverges across backends: %q vs %q", gsel.Name, esel.Name)
	}
	spec := &matscale.SweepSpec{
		Algorithms: []string{"cannon", "gk"},
		Machines:   []string{"ncube2"},
		Ps:         []int{16, 64},
		Ns:         []int{16},
	}
	gs, err := matscale.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	es, err := matscale.Sweep(spec, matscale.WithBackend(matscale.Events))
	if err != nil {
		t.Fatal(err)
	}
	if gs.CSV() != es.CSV() {
		t.Fatal("sweep CSV differs between backends")
	}
}

func TestWithBackendUnknownValue(t *testing.T) {
	m := matscale.NCube2(16)
	a := matscale.RandomMatrix(16, 16, 1)
	bad := matscale.WithBackend(matscale.Backend(99))
	var ube *matscale.UnsupportedBackendError
	if _, err := matscale.Run(matscale.Cannon, m, a, a, bad); !errors.As(err, &ube) {
		t.Fatalf("Run err = %v, want *UnsupportedBackendError", err)
	}
	if ube.Backend != matscale.Backend(99) || ube.Error() == "" {
		t.Fatalf("error carries %v: %q", ube.Backend, ube.Error())
	}
	if _, _, err := matscale.RunAuto(m, a, a, bad); !errors.As(err, &ube) {
		t.Fatalf("RunAuto err = %v, want *UnsupportedBackendError", err)
	}
	spec := &matscale.SweepSpec{Algorithms: []string{"cannon"}, Machines: []string{"ncube2"}, Ps: []int{16}, Ns: []int{16}}
	if _, err := matscale.Sweep(spec, bad); !errors.As(err, &ube) {
		t.Fatalf("Sweep err = %v, want *UnsupportedBackendError", err)
	}
}

func TestParseBackend(t *testing.T) {
	for name, want := range map[string]matscale.Backend{
		"goroutines": matscale.Goroutines,
		"events":     matscale.Events,
	} {
		got, err := matscale.ParseBackend(name)
		if err != nil || got != want {
			t.Fatalf("ParseBackend(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Fatalf("Backend %v renders as %q", got, got.String())
		}
	}
	if _, err := matscale.ParseBackend("quantum"); err == nil {
		t.Fatal("want error for unknown backend name")
	}
}

func TestHostMul(t *testing.T) {
	a := matscale.RandomMatrix(33, 17, 1)
	b := matscale.RandomMatrix(17, 29, 2)
	got, err := matscale.HostMul(a, b, matscale.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	want := matscale.Mul(a, b)
	for i := range want.Data {
		if d := got.Data[i] - want.Data[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("element %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestHostMulDimensionMismatch(t *testing.T) {
	_, err := matscale.HostMul(matscale.NewMatrix(3, 4), matscale.NewMatrix(5, 3))
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("err = %v, want dimension mismatch", err)
	}
}

func TestParallelMulStillPanicsOnMismatch(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("ParallelMul did not panic on a dimension mismatch")
		}
	}()
	matscale.ParallelMul(matscale.NewMatrix(3, 4), matscale.NewMatrix(5, 3), 1)
}

// intMatrix builds a matrix of small integers so parallel and serial
// products compare exactly regardless of summation order.
func intMatrix(n int, seed uint64) *matscale.Matrix {
	m := matscale.NewMatrix(n, n)
	state := seed
	for i := range m.Data {
		state = state*6364136223846793005 + 1442695040888963407
		m.Data[i] = float64(state >> 60) // 0..15
	}
	return m
}

func TestRunWithFaults(t *testing.T) {
	m := matscale.NCube2(64)
	a := intMatrix(16, 1)
	b := intMatrix(16, 2)
	clean, err := matscale.Run(matscale.GK, m, a, b, matscale.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	f, err := matscale.ParseFaults("straggler=2@rank0,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := matscale.Run(matscale.GK, m, a, b,
		matscale.WithFaults(f), matscale.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	// The product is unaffected; only the timing degrades.
	want := matscale.Mul(a, b)
	for i := range want.Data {
		if faulted.C.Data[i] != want.Data[i] {
			t.Fatal("faulted product differs from serial")
		}
	}
	if faulted.Overhead() <= clean.Overhead() {
		t.Fatalf("faulted To %v not above clean %v", faulted.Overhead(), clean.Overhead())
	}
	d := faulted.Metrics.Degradation
	if d == nil {
		t.Fatal("no Degradation block with WithFaults+WithMetrics")
	}
	if len(d.StraggledRanks) != 1 || d.StraggledRanks[0] != 0 {
		t.Fatalf("StraggledRanks = %v, want [0]", d.StraggledRanks)
	}
	if clean.Metrics.Degradation != nil {
		t.Fatal("clean run has a Degradation block")
	}
	// The caller's machine is never mutated.
	if m.Faults != nil || m.CollectMetrics {
		t.Fatal("Run mutated the caller's machine")
	}
}

func TestWithFaultsDeterministic(t *testing.T) {
	a := matscale.RandomMatrix(16, 16, 3)
	b := matscale.RandomMatrix(16, 16, 4)
	f, err := matscale.ParseFaults("stragglers=0.25:3,loss=0.02,jitter=0.2,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *matscale.Result {
		res, err := matscale.Run(matscale.Cannon, matscale.NCube2(16), a, b,
			matscale.WithFaults(f), matscale.WithMetrics())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first, second := run(), run()
	if first.Sim.Tp != second.Sim.Tp {
		t.Fatalf("Tp differs across identical faulted runs: %v vs %v", first.Sim.Tp, second.Sim.Tp)
	}
	var b1, b2 bytes.Buffer
	if err := first.Metrics.WriteRanksCSV(&b1); err != nil {
		t.Fatal(err)
	}
	if err := second.Metrics.WriteRanksCSV(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("metrics bytes differ across identical faulted runs")
	}
}

func TestWithFaultsNilIsNoop(t *testing.T) {
	a := matscale.RandomMatrix(16, 16, 5)
	b := matscale.RandomMatrix(16, 16, 6)
	plain, err := matscale.Run(matscale.Cannon, matscale.NCube2(16), a, b)
	if err != nil {
		t.Fatal(err)
	}
	withNil, err := matscale.Run(matscale.Cannon, matscale.NCube2(16), a, b, matscale.WithFaults(nil))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Sim.Tp != withNil.Sim.Tp {
		t.Fatalf("nil faults changed Tp: %v vs %v", plain.Sim.Tp, withNil.Sim.Tp)
	}
}

func TestRunRejectsInvalidFaults(t *testing.T) {
	a := matscale.RandomMatrix(16, 16, 5)
	b := matscale.RandomMatrix(16, 16, 6)
	bad := &matscale.Faults{Loss: 2}
	if _, err := matscale.Run(matscale.Cannon, matscale.NCube2(16), a, b, matscale.WithFaults(bad)); err == nil {
		t.Fatal("invalid fault config accepted")
	}
}

func sweepSpec() *matscale.SweepSpec {
	return &matscale.SweepSpec{
		Algorithms: []string{"cannon", "gk"},
		Machines:   []string{"custom"},
		Ts:         17, Tw: 3,
		Ps:   []int{16, 64},
		Ns:   []int{16, 32},
		Seed: 1,
	}
}

func TestSweepByteIdenticalAcrossWorkerCounts(t *testing.T) {
	spec := sweepSpec()
	spec.Faults = []string{"", "straggler=2@rank0,seed=42"}
	var baseCSV, baseJSON string
	for _, workers := range []int{1, 4, 0} { // 0 = NumCPU
		res, err := matscale.Sweep(spec, matscale.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		if baseCSV == "" {
			baseCSV, baseJSON = res.CSV(), sb.String()
			continue
		}
		if res.CSV() != baseCSV {
			t.Fatalf("workers=%d: CSV diverged", workers)
		}
		if sb.String() != baseJSON {
			t.Fatalf("workers=%d: JSON diverged", workers)
		}
	}
}

func TestSweepWithProgress(t *testing.T) {
	var calls, total int
	res, err := matscale.Sweep(sweepSpec(),
		matscale.WithWorkers(2),
		matscale.WithProgress(func(done, tot int, c matscale.SweepCell) {
			calls++
			total = tot
		}))
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(res.Cells) || total != len(res.Cells) {
		t.Fatalf("progress calls = %d (total %d), want %d", calls, total, len(res.Cells))
	}
	if res.Ran == 0 {
		t.Fatal("no cells ran")
	}
}

func TestSweepRejectsBadSpec(t *testing.T) {
	if _, err := matscale.Sweep(&matscale.SweepSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestSweepAlgorithmsListsRegistry(t *testing.T) {
	names := matscale.SweepAlgorithms()
	if len(names) < 6 {
		t.Fatalf("registry too small: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestRunAllByteIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) string {
		var buf bytes.Buffer
		if err := matscale.RunAll(&buf, true, matscale.WithWorkers(workers)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := run(1)
	if serial == "" {
		t.Fatal("RunAll wrote nothing")
	}
	for _, workers := range []int{4, 0} {
		if run(workers) != serial {
			t.Fatalf("RunAll output diverged at workers=%d", workers)
		}
	}
}

func TestSweepServerPublicSurface(t *testing.T) {
	srv, err := matscale.NewSweepServer(matscale.SweepServerConfig{
		QueueDepth:    4,
		MaxConcurrent: 1,
		SweepWorkers:  1,
		CacheCells:    1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	spec := &matscale.SweepSpec{
		Algorithms: []string{"cannon"},
		Machines:   []string{"ncube2"},
		Ps:         []int{16},
		Ns:         []int{16},
	}
	job, err := srv.Submit(spec, matscale.Goroutines)
	if err != nil {
		t.Fatal(err)
	}
	<-job.Finished()
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || res.Ran != 1 {
		t.Fatalf("cells = %d ran = %d, want 1/1", len(res.Cells), res.Ran)
	}

	// A second identical submission is served from the cell cache and
	// must export the same bytes — the library-level statement of the
	// hit-vs-miss identity docs/SERVER.md promises over HTTP.
	job2, err := srv.Submit(spec, matscale.Goroutines)
	if err != nil {
		t.Fatal(err)
	}
	<-job2.Finished()
	res2, err := job2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.CSV() != res2.CSV() {
		t.Fatal("cached sweep CSV differs from cold sweep")
	}
	st := srv.Stats()
	if st.Cache == nil || st.Cache.Hits == 0 {
		t.Fatalf("no cache hits recorded: %+v", st)
	}

	// Typed rejections surface through the exported aliases.
	var bad *matscale.SweepBadSpecError
	if _, err := srv.Submit(&matscale.SweepSpec{}, matscale.Goroutines); !errors.As(err, &bad) {
		t.Fatalf("empty spec error = %v, want *SweepBadSpecError", err)
	}
}
