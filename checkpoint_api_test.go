package matscale_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"matscale"
)

// suspendRun runs Cannon on the Events backend with a cut at the given
// event count and returns the snapshot buffer plus the SuspendedError.
func suspendRun(t *testing.T, m *matscale.Machine, a, b *matscale.Matrix, cut uint64) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	_, err := matscale.Run(matscale.Cannon, m, a, b,
		matscale.WithBackend(matscale.Events), matscale.WithMetrics(),
		matscale.WithCheckpoint(&buf), matscale.WithSuspendAfter(cut))
	var se *matscale.SuspendedError
	if !errors.As(err, &se) {
		t.Fatalf("Run err = %v, want *SuspendedError", err)
	}
	if se.Events != cut {
		t.Fatalf("suspended at event %d, want %d", se.Events, cut)
	}
	if buf.Len() == 0 {
		t.Fatal("WithCheckpoint sink received no bytes")
	}
	if !bytes.Equal(buf.Bytes(), se.Snapshot) {
		t.Fatal("sink bytes differ from SuspendedError.Snapshot")
	}
	return &buf
}

// The public round trip: suspend via options, reload with Restore,
// resume with WithResume, and get the uninterrupted run's bytes back.
func TestCheckpointRoundTripPublicAPI(t *testing.T) {
	m := matscale.NCube2(64)
	a := matscale.RandomMatrix(16, 16, 1)
	b := matscale.RandomMatrix(16, 16, 2)
	base, err := matscale.Run(matscale.Cannon, m, a, b,
		matscale.WithBackend(matscale.Events), matscale.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}

	const cut = 50
	buf := suspendRun(t, m, a, b, cut)
	ck, err := matscale.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Events != cut {
		t.Fatalf("Restore Events = %d, want %d", ck.Events, cut)
	}

	res, err := matscale.Run(matscale.Cannon, m, a, b,
		matscale.WithBackend(matscale.Events), matscale.WithMetrics(),
		matscale.WithResume(ck))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Sim, res.Sim) {
		t.Fatalf("resumed Sim differs: Tp %v vs %v", base.Sim.Tp, res.Sim.Tp)
	}
	if !reflect.DeepEqual(base.Metrics, res.Metrics) {
		t.Fatal("resumed Metrics differ from uninterrupted run")
	}
	if !reflect.DeepEqual(base.C, res.C) {
		t.Fatal("resumed product differs from uninterrupted run")
	}
	if m.Checkpoint != nil {
		t.Fatal("Run mutated the caller's machine")
	}
}

// A Checkpoint written through WriteTo restores identically to the
// sink bytes.
func TestCheckpointWriteTo(t *testing.T) {
	m := matscale.NCube2(16)
	a := matscale.RandomMatrix(8, 8, 3)
	buf := suspendRun(t, m, a, a, 20)
	ck, err := matscale.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := ck.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	ck2, err := matscale.Restore(&out)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Events != ck.Events || !bytes.Equal(ck2.Data, ck.Data) {
		t.Fatal("WriteTo/Restore round trip changed the checkpoint")
	}
}

// Restore is where corruption surfaces: a flipped byte or a truncated
// stream is a typed container error, not undefined state later.
func TestRestoreRejectsCorruption(t *testing.T) {
	m := matscale.NCube2(16)
	a := matscale.RandomMatrix(8, 8, 3)
	buf := suspendRun(t, m, a, a, 20)
	good := buf.Bytes()

	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x40
	if _, err := matscale.Restore(bytes.NewReader(bad)); err == nil {
		t.Fatal("Restore accepted a corrupted snapshot")
	}
	if _, err := matscale.Restore(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("Restore accepted a truncated snapshot")
	}
}

// Resuming under a different program is a typed mismatch, caught
// before any wrong number is produced.
func TestResumeMismatchTyped(t *testing.T) {
	m := matscale.NCube2(64)
	a := matscale.RandomMatrix(16, 16, 1)
	buf := suspendRun(t, m, a, a, 50)
	ck, err := matscale.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var rme *matscale.ResumeMismatchError
	if _, err := matscale.Run(matscale.GK, m, a, a,
		matscale.WithBackend(matscale.Events), matscale.WithResume(ck)); !errors.As(err, &rme) {
		t.Fatalf("resume under GK err = %v, want *ResumeMismatchError", err)
	}
}

// Meaningless option/backend combinations are rejected up front with
// typed errors instead of being silently ignored.
func TestCheckpointOptionValidation(t *testing.T) {
	m := matscale.NCube2(16)
	a := matscale.RandomMatrix(8, 8, 1)
	var sink bytes.Buffer

	if _, err := matscale.Run(matscale.Cannon, m, a, a,
		matscale.WithBackend(matscale.Events), matscale.WithSuspendAfter(5)); err == nil {
		t.Fatal("WithSuspendAfter without WithCheckpoint accepted")
	}
	if _, err := matscale.Run(matscale.Cannon, m, a, a,
		matscale.WithBackend(matscale.Events), matscale.WithCheckpoint(&sink)); err == nil {
		t.Fatal("WithCheckpoint without WithSuspendAfter accepted")
	}

	// The Goroutines engine has no deterministic cut: asking it for a
	// checkpoint is a typed capability error.
	var uce *matscale.UnsupportedCapabilityError
	if _, err := matscale.Run(matscale.Cannon, m, a, a,
		matscale.WithCheckpoint(&sink), matscale.WithSuspendAfter(5)); !errors.As(err, &uce) {
		t.Fatalf("goroutines checkpoint err = %v, want *UnsupportedCapabilityError", err)
	}
	if uce.Backend != matscale.Goroutines {
		t.Fatalf("capability error names backend %v", uce.Backend)
	}

	// Auto-selection cannot guarantee the resumed program matches.
	if _, _, err := matscale.RunAuto(m, a, a,
		matscale.WithBackend(matscale.Events),
		matscale.WithCheckpoint(&sink), matscale.WithSuspendAfter(5)); err == nil {
		t.Fatal("RunAuto accepted checkpoint options")
	}

	// Sweeps suspend at cell granularity through the server, not at a
	// run-level cut.
	spec := &matscale.SweepSpec{Algorithms: []string{"cannon"}, Machines: []string{"ncube2"}, Ps: []int{16}, Ns: []int{16}}
	if _, err := matscale.Sweep(spec,
		matscale.WithCheckpoint(&sink), matscale.WithSuspendAfter(5)); !errors.As(err, &uce) {
		t.Fatalf("Sweep checkpoint err = %v, want *UnsupportedCapabilityError", err)
	}
}

// The consolidated ServerErrorKind enum: kinds are errors.Is targets
// for every typed server error, old aliases included, and each maps to
// its HTTP status.
func TestServerErrorKindPublicSurface(t *testing.T) {
	cases := []struct {
		err    error
		kind   matscale.ServerErrorKind
		status int
	}{
		{&matscale.SweepQueueFullError{Depth: 4}, matscale.ServerKindQueueFull, 429},
		{&matscale.SweepRateLimitedError{}, matscale.ServerKindRateLimited, 429},
		{&matscale.SweepShuttingDownError{}, matscale.ServerKindShuttingDown, 503},
		{&matscale.SweepJobTimeoutError{}, matscale.ServerKindJobTimeout, 504},
		{&matscale.SweepBadSpecError{Err: errors.New("x")}, matscale.ServerKindBadSpec, 400},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.kind) {
			t.Errorf("errors.Is(%T, %v) = false", c.err, c.kind)
		}
		if got := matscale.ServerErrorKindOf(c.err); got != c.kind {
			t.Errorf("ServerErrorKindOf(%T) = %v, want %v", c.err, got, c.kind)
		}
		if got := c.kind.HTTPStatus(); got != c.status {
			t.Errorf("%v.HTTPStatus() = %d, want %d", c.kind, got, c.status)
		}
	}
	if got := matscale.ServerErrorKindOf(errors.New("plain")); got != matscale.ServerKindSweepError {
		t.Errorf("untyped error kind = %v, want sweep_error", got)
	}
}

// The re-exported job states: string forms and terminality match the
// documented machine.
func TestSweepJobStatePublicSurface(t *testing.T) {
	if matscale.JobQueued.String() != "queued" || matscale.JobSuspended.String() != "suspended" {
		t.Fatal("job state string forms changed")
	}
	if matscale.JobSuspended.Terminal() {
		t.Fatal("suspended must not be terminal — suspended jobs resume")
	}
	for _, st := range []matscale.SweepJobState{matscale.JobDone, matscale.JobFailed, matscale.JobCancelled} {
		if !st.Terminal() {
			t.Fatalf("%v should be terminal", st)
		}
	}
}
